// Cross-module integration tests: miniature versions of the paper's
// experiments wired end-to-end, asserting the qualitative *shapes* the
// full benches reproduce at scale.
#include <gtest/gtest.h>

#include <cmath>

#include "bmf/fusion.hpp"
#include "circuit/testcases.hpp"
#include "linalg/blas.hpp"
#include "regress/elastic_net.hpp"
#include "regress/least_squares.hpp"
#include "regress/omp.hpp"
#include "spice/circuits.hpp"
#include "stats/descriptive.hpp"

namespace bmf {
namespace {

double test_error(const circuit::Testcase&,
                  const basis::PerformanceModel& model,
                  const circuit::Dataset& test) {
  return stats::relative_error(model.predict(test.points), test.f);
}

TEST(Integration, MiniTableOne_BmfBeatsOmpAtSmallK) {
  // Table I's headline at reduced scale: at K = 60 samples over 300
  // variables, BMF-PS must beat OMP by a wide margin.
  circuit::Testcase tc =
      circuit::ring_oscillator_testcase(circuit::RoMetric::kPower, 300, 9);
  stats::Rng rng(100);
  circuit::Dataset train = tc.silicon.sample_late(60, rng);
  circuit::Dataset test = tc.silicon.sample_late(300, rng);

  regress::OmpOptions oopt;
  auto omp = regress::omp_fit(tc.silicon.late_basis(), train.points, train.f,
                              oopt);
  auto fused = core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs,
                             tc.informative, train.points, train.f);

  const double e_omp = test_error(tc, omp, test);
  const double e_bmf = test_error(tc, fused.model, test);
  EXPECT_LT(e_bmf, 0.5 * e_omp);
  EXPECT_LT(e_bmf, 0.02);
}

TEST(Integration, MiniTableOne_ErrorDecreasesWithK) {
  circuit::Testcase tc =
      circuit::ring_oscillator_testcase(circuit::RoMetric::kPower, 250, 11);
  stats::Rng rng(101);
  circuit::Dataset train = tc.silicon.sample_late(300, rng);
  circuit::Dataset test = tc.silicon.sample_late(300, rng);
  double prev = 1e9;
  for (std::size_t k : {40u, 120u, 300u}) {
    linalg::Matrix pts = train.points.block(0, 0, k, 250);
    linalg::Vector f(train.f.begin(), train.f.begin() + k);
    auto fused = core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs,
                               tc.informative, pts, f);
    const double e = test_error(tc, fused.model, test);
    EXPECT_LT(e, prev * 1.2);  // monotone up to noise
    prev = e;
  }
}

TEST(Integration, ElasticNetIsACompetitiveNoPriorBaseline) {
  // The elastic-net baseline (paper ref [15]) should land in the same
  // ballpark as OMP — both far behind BMF at small K.
  circuit::Testcase tc =
      circuit::ring_oscillator_testcase(circuit::RoMetric::kPower, 200, 13);
  stats::Rng rng(102);
  circuit::Dataset train = tc.silicon.sample_late(80, rng);
  circuit::Dataset test = tc.silicon.sample_late(300, rng);

  auto enet = regress::elastic_net_fit(tc.silicon.late_basis(), train.points,
                                       train.f);
  auto omp = regress::omp_fit(tc.silicon.late_basis(), train.points, train.f);
  auto fused = core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs,
                             tc.informative, train.points, train.f);

  const double e_enet = test_error(tc, enet, test);
  const double e_omp = test_error(tc, omp, test);
  const double e_bmf = test_error(tc, fused.model, test);
  EXPECT_LT(e_bmf, e_enet);
  EXPECT_LT(e_enet, 5.0 * e_omp + 0.05);  // same ballpark as OMP
}

TEST(Integration, SpiceDiffPairFlow) {
  // Miniature of examples/spice_diffpair: schematic LS model -> prior
  // mapping with 2 fingers -> fused post-layout model beats prior-only.
  stats::Rng rng(103);
  const double sigma_vth = 5e-3;

  auto simulate_schematic = [&](const linalg::Vector& x) {
    spice::DiffPairParams p;
    p.vth1 = 0.4 + sigma_vth * x[0];
    p.vth2 = 0.4 + sigma_vth * x[1];
    return spice::diff_pair_output_offset(p);
  };
  // Post-layout: model finger mismatch by aggregating pairs of variables
  // plus a small load mismatch x[4], x[5].
  auto simulate_late = [&](const linalg::Vector& x) {
    const double sf = sigma_vth * std::sqrt(2.0);
    spice::DiffPairParams p;
    p.vth1 = 0.4 + sf * 0.5 * (x[0] + x[1]);
    p.vth2 = 0.4 + sf * 0.5 * (x[2] + x[3]);
    p.dr1 = 0.01 * x[4];
    p.dr2 = 0.01 * x[5];
    return spice::diff_pair_output_offset(p);
  };

  // Early model from 80 schematic runs.
  linalg::Matrix xe(80, 2);
  linalg::Vector fe(80);
  for (std::size_t i = 0; i < 80; ++i) {
    auto x = rng.normal_vector(2);
    xe.set_row(i, x);
    fe[i] = simulate_schematic(x);
  }
  auto early = regress::least_squares_fit(basis::BasisSet::linear(2), xe, fe);

  core::MultifingerMap map({2, 2}, 2);
  core::MappedPrior mapped = map.map_linear_model(early);

  linalg::Matrix xl(20, 6);
  linalg::Vector fl(20);
  for (std::size_t i = 0; i < 20; ++i) {
    auto x = rng.normal_vector(6);
    xl.set_row(i, x);
    fl[i] = simulate_late(x);
  }
  core::BmfFitter fitter(mapped);
  fitter.set_data(xl, fl);
  auto fused = fitter.fit();

  linalg::Matrix xt(80, 6);
  linalg::Vector ft(80);
  for (std::size_t i = 0; i < 80; ++i) {
    auto x = rng.normal_vector(6);
    xt.set_row(i, x);
    ft[i] = simulate_late(x);
  }
  basis::PerformanceModel prior_only(mapped.late_basis, mapped.early_coeffs);
  const double e_prior = stats::relative_error(prior_only.predict(xt), ft);
  const double e_fused =
      stats::relative_error(fused.model.predict(xt), ft);
  EXPECT_LT(e_fused, e_prior);
  EXPECT_LT(e_fused, 0.25);
}

TEST(Integration, FastSolverEndToEndMatchesDirectOnTestcase) {
  circuit::Testcase tc = circuit::sram_read_path_testcase(150, 15);
  stats::Rng rng(104);
  circuit::Dataset train = tc.silicon.sample_late(50, rng);
  core::FusionOptions fast, direct;
  fast.solver = core::SolverKind::kFast;
  direct.solver = core::SolverKind::kDirect;
  auto a = core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs,
                         tc.informative, train.points, train.f,
                         core::PriorSelection::kAuto, fast);
  auto b = core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs,
                         tc.informative, train.points, train.f,
                         core::PriorSelection::kAuto, direct);
  ASSERT_EQ(a.report.chosen_kind, b.report.chosen_kind);
  ASSERT_EQ(a.report.chosen_tau, b.report.chosen_tau);
  // On this testcase the prior is nearly exact, so CV drives tau to the
  // bottom of the grid (~1e-30, far below the data scale) where the
  // regularized system is extremely ill-conditioned. There the Woodbury
  // solvers and the direct Cholesky agree only to about cond * eps of the
  // coefficient norm (~5e-4 observed for both the per-tau and the
  // workspace fast paths), so the bound is relative to the norm with that
  // conditioning loss budgeted in.
  double scale = linalg::norm_inf(b.model.coefficients()) + 1e-300;
  for (std::size_t m = 0; m < a.model.num_terms(); ++m)
    EXPECT_NEAR(a.model.coefficients()[m], b.model.coefficients()[m],
                1e-2 * scale);
}

TEST(Integration, HistogramOfSamplesIsUnimodalAroundNominal) {
  // Fig. 4/7 sanity at small scale: the MC histogram is centered on the
  // nominal and roughly symmetric.
  circuit::Testcase tc = circuit::sram_read_path_testcase(
      200, 17, circuit::EarlyModelSource::kTruth);
  stats::Rng rng(105);
  circuit::Dataset d = tc.silicon.sample_late(3000, rng);
  std::vector<double> v(d.f.begin(), d.f.end());
  auto s = stats::summarize(v);
  EXPECT_NEAR(s.mean, 250e-12, 3e-12);
  const double median = stats::quantile(v, 0.5);
  EXPECT_NEAR((s.mean - median) / s.stddev, 0.0, 0.1);  // symmetric-ish
}

}  // namespace
}  // namespace bmf
