#include "bmf/map_solver.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "stats/rng.hpp"

namespace bmf::core {
namespace {

struct Problem {
  linalg::Matrix g;
  linalg::Vector f;
  linalg::Vector early;
};

Problem make_problem(std::size_t k, std::size_t m, stats::Rng& rng) {
  Problem p;
  p.g.assign(k, m);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < m; ++j) p.g(i, j) = rng.normal();
  p.early.resize(m);
  for (double& e : p.early) e = rng.normal(0.0, 1.0);
  p.f.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < m; ++j) v += p.early[j] * p.g(i, j);
    p.f[i] = v + rng.normal(0.0, 0.05);
  }
  return p;
}

TEST(MapSolver, DirectMatchesHandSolvedTinyCase) {
  // One sample, one coefficient: (tau q + g^2) a = tau q mu + g f.
  linalg::Matrix g{{2.0}};
  linalg::Vector f{6.0};
  auto prior = CoefficientPrior::nonzero_mean({1.0});
  // q = 1, tau = 4: (4 + 4) a = 4*1 + 2*6 = 16 -> a = 2.
  linalg::Vector a = map_solve_direct(g, f, prior, 4.0);
  EXPECT_NEAR(a[0], 2.0, 1e-12);
}

TEST(MapSolver, ZeroMeanShrinksTowardZeroAsTauGrows) {
  stats::Rng rng(1);
  Problem p = make_problem(20, 8, rng);
  auto prior = CoefficientPrior::zero_mean(p.early);
  linalg::Vector weak = map_solve_direct(p.g, p.f, prior, 1e-8);
  linalg::Vector strong = map_solve_direct(p.g, p.f, prior, 1e8);
  EXPECT_LT(linalg::norm2(strong), 0.1 * linalg::norm2(weak));
}

TEST(MapSolver, NonzeroMeanConvergesToEarlyModelAsTauGrows) {
  stats::Rng rng(2);
  Problem p = make_problem(20, 8, rng);
  auto prior = CoefficientPrior::nonzero_mean(p.early);
  linalg::Vector a = map_solve_direct(p.g, p.f, prior, 1e10);
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_NEAR(a[j], p.early[j], 1e-3) << "j=" << j;
}

TEST(MapSolver, SmallTauApproachesLeastSquaresWhenOverdetermined) {
  stats::Rng rng(3);
  Problem p = make_problem(40, 6, rng);
  auto prior = CoefficientPrior::zero_mean(p.early);
  linalg::Vector a = map_solve_direct(p.g, p.f, prior, 1e-10);
  // LS solution via normal equations.
  linalg::Matrix gram = linalg::gram(p.g);
  linalg::Vector ls =
      linalg::Cholesky(gram).solve(linalg::gemv_t(p.g, p.f));
  for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(a[j], ls[j], 1e-6);
}

class FastVsDirect
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 PriorKind, double>> {};

TEST_P(FastVsDirect, Agree) {
  const auto [k, m, kind, tau] = GetParam();
  stats::Rng rng(k * 31 + m);
  Problem p = make_problem(k, m, rng);
  auto prior = kind == PriorKind::kZeroMean
                   ? CoefficientPrior::zero_mean(p.early)
                   : CoefficientPrior::nonzero_mean(p.early);
  linalg::Vector direct = map_solve_direct(p.g, p.f, prior, tau);
  linalg::Vector fast = map_solve_fast(p.g, p.f, prior, tau);
  const double scale = linalg::norm_inf(direct) + 1.0;
  for (std::size_t j = 0; j < m; ++j)
    EXPECT_NEAR(fast[j], direct[j], 1e-7 * scale)
        << "k=" << k << " m=" << m << " tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FastVsDirect,
    ::testing::Combine(::testing::Values<std::size_t>(5, 20),
                       ::testing::Values<std::size_t>(8, 40, 120),
                       ::testing::Values(PriorKind::kZeroMean,
                                         PriorKind::kNonzeroMean),
                       ::testing::Values(1e-2, 1.0, 1e2)));

TEST(MapSolver, MissingPriorCoefficientsFollowDataOnly) {
  // Two columns: one with a wildly wrong prior marked missing, one
  // informative. The missing one must be fit from data regardless of tau.
  stats::Rng rng(4);
  const std::size_t k = 30;
  linalg::Matrix g(k, 2);
  linalg::Vector f(k);
  for (std::size_t i = 0; i < k; ++i) {
    g(i, 0) = rng.normal();
    g(i, 1) = rng.normal();
    f[i] = 3.0 * g(i, 0) + 5.0 * g(i, 1);
  }
  // Early says column 0 ~ 3 (good); column 1 prior is missing.
  auto prior = CoefficientPrior::nonzero_mean({3.0, -100.0}, {1, 0});
  linalg::Vector a = map_solve_fast(g, f, prior, 10.0);
  EXPECT_NEAR(a[0], 3.0, 0.05);
  EXPECT_NEAR(a[1], 5.0, 0.05);  // not dragged toward -100
}

TEST(MapSolver, Validation) {
  linalg::Matrix g(3, 2);
  linalg::Vector f(3, 0.0);
  auto prior = CoefficientPrior::zero_mean({1.0, 1.0});
  EXPECT_THROW(map_solve_direct(g, f, prior, 0.0), std::invalid_argument);
  EXPECT_THROW(map_solve_direct(g, f, prior, -1.0), std::invalid_argument);
  EXPECT_THROW(map_solve_direct(g, {1.0}, prior, 1.0),
               std::invalid_argument);
  auto wrong = CoefficientPrior::zero_mean({1.0, 1.0, 1.0});
  EXPECT_THROW(map_solve_direct(g, f, wrong, 1.0), std::invalid_argument);
}

TEST(MapSolver, DispatchMatchesImplementations) {
  stats::Rng rng(5);
  Problem p = make_problem(10, 15, rng);
  auto prior = CoefficientPrior::zero_mean(p.early);
  linalg::Vector via_direct =
      map_solve(p.g, p.f, prior, 1.0, SolverKind::kDirect);
  linalg::Vector via_fast = map_solve(p.g, p.f, prior, 1.0, SolverKind::kFast);
  linalg::Vector direct = map_solve_direct(p.g, p.f, prior, 1.0);
  EXPECT_EQ(via_direct, direct);
  for (std::size_t j = 0; j < 15; ++j)
    EXPECT_NEAR(via_fast[j], direct[j], 1e-8);
}

TEST(MapPosterior, MeanMatchesMapAndCovarianceShrinksWithData) {
  stats::Rng rng(6);
  Problem small = make_problem(5, 4, rng);
  Problem large = make_problem(100, 4, rng);
  auto prior_s = CoefficientPrior::zero_mean(small.early);
  auto prior_l = CoefficientPrior::zero_mean(small.early);

  MapPosterior post_s = map_posterior(small.g, small.f, prior_s, 1.0, 1.0);
  linalg::Vector a = map_solve_direct(small.g, small.f, prior_s, 1.0);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(post_s.mean[j], a[j], 1e-10);

  MapPosterior post_l = map_posterior(large.g, large.f, prior_l, 1.0, 1.0);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GT(post_s.covariance(j, j), 0.0);
    EXPECT_LT(post_l.covariance(j, j), post_s.covariance(j, j));
  }
  EXPECT_THROW(map_posterior(small.g, small.f, prior_s, 1.0, 0.0),
               std::invalid_argument);
}

TEST(MapSolver, SolverNames) {
  EXPECT_STREQ(to_string(SolverKind::kDirect), "direct-cholesky");
  EXPECT_STREQ(to_string(SolverKind::kFast), "fast-woodbury");
}

}  // namespace
}  // namespace bmf::core
