// Contract-layer behavior in both build modes.
//
// In a BMF_CHECKED build every violated contract must throw a structured
// ContractViolation carrying the function, expression and offending
// dimensions. In an unchecked build the macros must expand to nothing:
// conditions are not evaluated (zero cost, no side effects) and checked-only
// preconditions do not throw.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bmf/prior.hpp"
#include "bmf/solver_workspace.hpp"
#include "check/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "regress/least_squares.hpp"

namespace {

using bmf::check::ContractViolation;
using bmf::linalg::Matrix;
using bmf::linalg::Vector;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// A small well-posed design (K=4, M=2) used as the healthy baseline.
// [[maybe_unused]]: the helpers back the checked-build tests only.
[[maybe_unused]] Matrix healthy_design() {
  return Matrix{{1.0, 0.5}, {1.0, -0.25}, {1.0, 2.0}, {1.0, -1.5}};
}

[[maybe_unused]] Vector healthy_responses() {
  return Vector{1.0, 2.0, 0.5, 1.5};
}

[[maybe_unused]] bmf::core::CoefficientPrior healthy_prior() {
  return bmf::core::CoefficientPrior::zero_mean(Vector{1.0, 0.5});
}

TEST(ContractPredicates, FiniteAndPositive) {
  EXPECT_TRUE(bmf::check::is_finite(1.0));
  EXPECT_FALSE(bmf::check::is_finite(kNan));
  EXPECT_FALSE(bmf::check::is_finite(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(bmf::check::all_finite(std::vector<double>{1.0, -2.0}));
  EXPECT_FALSE(bmf::check::all_finite(std::vector<double>{1.0, kNan}));
  EXPECT_TRUE(bmf::check::all_positive(std::vector<double>{0.5, 2.0}));
  EXPECT_FALSE(bmf::check::all_positive(std::vector<double>{0.5, 0.0}));
  EXPECT_FALSE(bmf::check::all_positive(
      std::vector<double>{0.5, std::numeric_limits<double>::infinity()}));
}

TEST(ContractPredicates, OverlapAndSymmetry) {
  double buf[8] = {0.0};
  EXPECT_FALSE(bmf::check::no_overlap(buf, 8 * sizeof(double), buf + 4,
                                      4 * sizeof(double)));
  EXPECT_TRUE(bmf::check::no_overlap(buf, 4 * sizeof(double), buf + 4,
                                     4 * sizeof(double)));
  EXPECT_TRUE(bmf::check::is_symmetric(Matrix{{2.0, 1.0}, {1.0, 3.0}}));
  EXPECT_FALSE(bmf::check::is_symmetric(Matrix{{2.0, 1.0}, {-1.0, 3.0}}));
}

#if defined(BMF_CHECKED) && BMF_CHECKED

TEST(ContractChecked, ShapeMismatchThrowsStructuredViolation) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{1.0, 2.0, 3.0};
  try {
    (void)bmf::linalg::gemv(a, x);
    FAIL() << "gemv accepted a shape mismatch";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.function(), "gemv");
    EXPECT_NE(e.expression().find("a.cols() == x.size()"), std::string::npos);
    ASSERT_EQ(e.dims().size(), 2u);
    EXPECT_EQ(e.dims()[0].first, "a.cols");
    EXPECT_EQ(e.dims()[0].second, 2u);
    EXPECT_EQ(e.dims()[1].first, "x.size");
    EXPECT_EQ(e.dims()[1].second, 3u);
  }
}

TEST(ContractChecked, AliasedAxpyThrows) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_THROW(bmf::linalg::axpy(2.0, v, v), ContractViolation);
}

TEST(ContractChecked, AsymmetricCholeskyInputThrows) {
  const Matrix a{{4.0, 1.0}, {-1.0, 3.0}};
  EXPECT_THROW(bmf::linalg::Cholesky{a}, ContractViolation);
}

TEST(ContractChecked, NegativeDiagonalFailsSpdScreen) {
  const Matrix a{{-4.0, 0.0}, {0.0, 3.0}};
  EXPECT_THROW(bmf::linalg::spd_solve(a, Vector{1.0, 1.0}),
               ContractViolation);
}

TEST(ContractChecked, NanDesignRejectedByWorkspace) {
  Matrix g = healthy_design();
  g(1, 1) = kNan;
  EXPECT_THROW(
      bmf::core::MapSolverWorkspace(g, healthy_responses(), healthy_prior()),
      ContractViolation);
}

TEST(ContractChecked, NanResponsesRejectedByWorkspace) {
  Vector f = healthy_responses();
  f[2] = kNan;
  EXPECT_THROW(
      bmf::core::MapSolverWorkspace(healthy_design(), f, healthy_prior()),
      ContractViolation);
}

TEST(ContractChecked, NonPositivePriorScaleThrows) {
  bmf::core::PriorOptions options;
  options.scale = -1.0;
  EXPECT_THROW(
      bmf::core::CoefficientPrior::zero_mean(Vector{1.0, 0.5}, {}, options),
      ContractViolation);
}

TEST(ContractChecked, NanEarlyCoefficientsRejectedByPrior) {
  EXPECT_THROW(bmf::core::CoefficientPrior::zero_mean(Vector{1.0, kNan}),
               ContractViolation);
}

TEST(ContractChecked, NanDesignRejectedByLeastSquares) {
  Matrix g = healthy_design();
  g(0, 0) = kNan;
  EXPECT_THROW(
      bmf::regress::least_squares_coefficients(g, healthy_responses()),
      ContractViolation);
}

TEST(ContractChecked, ViolationIsAnInvalidArgument) {
  // Callers that documented std::invalid_argument on bad input keep that
  // promise when the contract layer fires first.
  Vector v{1.0};
  EXPECT_THROW(bmf::linalg::axpy(1.0, v, v), std::invalid_argument);
}

#else  // unchecked build: the contract layer must be exactly zero-cost

TEST(ContractUnchecked, ConditionsAreNotEvaluated) {
  int evaluations = 0;
  [[maybe_unused]] auto count = [&evaluations]() {
    ++evaluations;
    return false;
  };
  BMF_CONTRACT(count(), "never evaluated when unchecked");
  BMF_EXPECTS(count(), "never evaluated when unchecked");
  BMF_ENSURES(count(), "never evaluated when unchecked");
  BMF_CONTRACT_DIMS(count(), "never evaluated", {"n", std::size_t{1}});
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractUnchecked, CheckedOnlyPreconditionsDoNotThrow) {
  // Aliased axpy violates only a checked-build contract; unchecked builds
  // must run it (the loop is well-defined for x == y, just unchecked).
  Vector v{1.0, 2.0};
  EXPECT_NO_THROW(bmf::linalg::axpy(1.0, v, v));
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
}

#endif

}  // namespace
