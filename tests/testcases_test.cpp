#include "circuit/testcases.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bmf/fusion.hpp"
#include "stats/descriptive.hpp"

namespace bmf::circuit {
namespace {

TEST(Testcases, RoMetricNames) {
  EXPECT_STREQ(to_string(RoMetric::kPower), "power");
  EXPECT_STREQ(to_string(RoMetric::kPhaseNoise), "phase-noise");
  EXPECT_STREQ(to_string(RoMetric::kFrequency), "frequency");
}

TEST(Testcases, RingOscillatorTruthSourceSmall) {
  Testcase tc = ring_oscillator_testcase(RoMetric::kPower, 100, 1,
                                         EarlyModelSource::kTruth);
  EXPECT_EQ(tc.circuit, "ring-oscillator");
  EXPECT_EQ(tc.metric, "power");
  EXPECT_EQ(tc.early_coeffs.size(), 101u);
  EXPECT_GT(tc.seconds_per_sample, 0.0);
  // Cost calibration: 900 samples must cost ~12.58 hours.
  EXPECT_NEAR(tc.simulation_hours(900), 12.58, 1e-9);
}

TEST(Testcases, SramCostCalibration) {
  Testcase tc = sram_read_path_testcase(100, 1, EarlyModelSource::kTruth);
  EXPECT_NEAR(tc.simulation_hours(400), 38.77, 1e-9);
  EXPECT_EQ(tc.circuit, "sram-read-path");
}

TEST(Testcases, EarlyCoeffsZeroOnParasitics) {
  Testcase tc = ring_oscillator_testcase(RoMetric::kFrequency, 200, 2,
                                         EarlyModelSource::kTruth);
  std::size_t missing = 0;
  for (std::size_t m = 0; m < tc.informative.size(); ++m) {
    if (!tc.informative[m]) {
      ++missing;
      EXPECT_DOUBLE_EQ(tc.early_coeffs[m], 0.0);
    }
  }
  EXPECT_EQ(missing, 4u);  // num_vars / 50
}

TEST(Testcases, OmpFitEarlyModelApproximatesEarlyTruth) {
  // The paper's schematic-model flow: OMP on 3000 schematic samples must
  // recover the early-stage behaviour well (it is fit at K >> strong terms).
  Testcase tc = ring_oscillator_testcase(RoMetric::kPower, 120, 3,
                                         EarlyModelSource::kOmpFit);
  stats::Rng rng(123);
  Dataset test = tc.silicon.sample_early(300, rng);
  basis::PerformanceModel early(tc.silicon.late_basis(), tc.early_coeffs);
  const double err = stats::relative_error(early.predict(test.points), test.f);
  EXPECT_LT(err, 0.01);
}

TEST(Testcases, MetricsDiffer) {
  Testcase power = ring_oscillator_testcase(RoMetric::kPower, 80, 1,
                                            EarlyModelSource::kTruth);
  Testcase freq = ring_oscillator_testcase(RoMetric::kFrequency, 80, 1,
                                           EarlyModelSource::kTruth);
  // Different seeds/specs -> different ground truths.
  bool differ = false;
  for (std::size_t m = 0; m < power.early_coeffs.size(); ++m)
    if (power.early_coeffs[m] != freq.early_coeffs[m]) differ = true;
  EXPECT_TRUE(differ);
  EXPECT_DOUBLE_EQ(power.silicon.late_truth()[0], 1.2e-3);
  EXPECT_DOUBLE_EQ(freq.silicon.late_truth()[0], 2.5e9);
}

TEST(Testcases, FrequencyPriorHasSignFlips) {
  Testcase tc = ring_oscillator_testcase(RoMetric::kFrequency, 1000, 4,
                                         EarlyModelSource::kTruth);
  std::size_t flips = 0, total = 0;
  const auto& late = tc.silicon.late_truth();
  for (std::size_t m = 1; m < late.size(); ++m) {
    if (!tc.informative[m] || late[m] == 0.0) continue;
    ++total;
    if (tc.early_coeffs[m] * late[m] < 0.0) ++flips;
  }
  const double rate = static_cast<double>(flips) / total;
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.45);
}

TEST(Testcases, EndToEndBmfBeatsSmallSampleBudget) {
  // Integration: BMF-PS on the RO power testcase at K = 40 must beat the
  // no-prior error level by a wide margin at this K (smoke version of
  // Table I at reduced scale).
  Testcase tc = ring_oscillator_testcase(RoMetric::kPower, 150, 5,
                                         EarlyModelSource::kTruth);
  stats::Rng rng(77);
  Dataset train = tc.silicon.sample_late(40, rng);
  Dataset test = tc.silicon.sample_late(200, rng);
  core::FusionResult res =
      core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs, tc.informative,
                    train.points, train.f);
  const double err =
      stats::relative_error(res.model.predict(test.points), test.f);
  // Prior-only error is already ~drift level; fused must be comparable or
  // better, and far below the variation spread (5%).
  EXPECT_LT(err, 0.01);
}

}  // namespace
}  // namespace bmf::circuit
