#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuits.hpp"
#include "spice/measure.hpp"
#include "spice/mna.hpp"
#include "spice/netlist.hpp"

namespace bmf::spice {
namespace {

TEST(Netlist, NodesAndLookup) {
  Netlist nl;
  EXPECT_EQ(nl.num_nodes(), 1u);  // ground pre-created
  NodeId a = nl.add_node("a");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(nl.node("a"), a);
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_THROW(nl.node("missing"), std::out_of_range);
  EXPECT_THROW(nl.add_node("a"), std::invalid_argument);
}

TEST(Netlist, DeviceValidation) {
  Netlist nl;
  NodeId a = nl.add_node("a");
  EXPECT_THROW(nl.add(Resistor{a, 7, 100.0}), std::invalid_argument);
  EXPECT_THROW(nl.add(Resistor{a, kGround, -5.0}), std::invalid_argument);
  EXPECT_THROW(nl.add(Capacitor{a, kGround, 0.0}), std::invalid_argument);
  EXPECT_THROW(nl.add(Mosfet{MosType::kNmos, a, a, kGround, 0.4, -1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(nl.add(Diode{a, kGround, -1e-14, 0.025}),
               std::invalid_argument);
}

TEST(Dc, VoltageDivider) {
  // 10 V across 1k + 3k: middle node at 7.5 V.
  Netlist nl;
  NodeId in = nl.add_node("in");
  NodeId mid = nl.add_node("mid");
  nl.add(VoltageSource{in, kGround, 10.0});
  nl.add(Resistor{in, mid, 1000.0});
  nl.add(Resistor{mid, kGround, 3000.0});
  Solution s = solve_dc(nl);
  EXPECT_NEAR(s.node_voltages[mid], 7.5, 1e-7);  // gmin shifts ~nV
  // Source current: 10 V / 4 kOhm = 2.5 mA flowing out of +, so the MNA
  // branch current (into +) is -2.5 mA.
  EXPECT_NEAR(s.source_currents[0], -2.5e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist nl;
  NodeId n = nl.add_node("n");
  nl.add(CurrentSource{kGround, n, 1e-3});  // 1 mA into node n
  nl.add(Resistor{n, kGround, 2000.0});
  Solution s = solve_dc(nl);
  EXPECT_NEAR(s.node_voltages[n], 2.0, 1e-7);  // gmin shifts ~nV
}

TEST(Dc, VccsAmplifier) {
  // v_out = -gm * R * v_in for an ideal VCCS with load R.
  Netlist nl;
  NodeId in = nl.add_node("in");
  NodeId out = nl.add_node("out");
  nl.add(VoltageSource{in, kGround, 0.1});
  nl.add(Vccs{out, kGround, in, kGround, 1e-3});  // i(out->gnd) = gm v_in
  nl.add(Resistor{out, kGround, 10e3});
  Solution s = solve_dc(nl);
  EXPECT_NEAR(s.node_voltages[out], -1.0, 1e-6);
}

TEST(Dc, DiodeClampsNearForwardVoltage) {
  // 5 V through 1 kOhm into a diode: the diode voltage must sit in the
  // 0.5-0.8 V window and satisfy KCL against the resistor current.
  Netlist nl;
  NodeId in = nl.add_node("in");
  NodeId d = nl.add_node("d");
  nl.add(VoltageSource{in, kGround, 5.0});
  nl.add(Resistor{in, d, 1000.0});
  nl.add(Diode{d, kGround});
  Solution s = solve_dc(nl);
  const double vd = s.node_voltages[d];
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.8);
  const double i_r = (5.0 - vd) / 1000.0;
  const double i_d = 1e-14 * (std::exp(vd / 0.02585) - 1.0);
  EXPECT_NEAR(i_r, i_d, 1e-6 * i_r + 1e-12);
}

TEST(Dc, NmosSaturationCurrent) {
  // NMOS with Vgs = 0.8, Vth = 0.4, k = 2e-3, lambda = 0: Id = 160 uA.
  Netlist nl;
  NodeId vdd = nl.add_node("vdd");
  NodeId g = nl.add_node("g");
  nl.add(VoltageSource{vdd, kGround, 1.8});
  nl.add(VoltageSource{g, kGround, 0.8});
  nl.add(Mosfet{MosType::kNmos, vdd, g, kGround, 0.4, 2e-3, 0.0});
  Solution s = solve_dc(nl);
  // Drain current flows from vdd source: i_branch(into +) = -Id.
  EXPECT_NEAR(s.source_currents[0], -0.5 * 2e-3 * 0.4 * 0.4, 1e-8);
}

TEST(Dc, NmosTriodeActsAsResistor) {
  // Deep triode: small vds -> channel conductance ~ k (vgs - vth).
  Netlist nl;
  NodeId d = nl.add_node("d");
  NodeId g = nl.add_node("g");
  nl.add(VoltageSource{g, kGround, 1.5});
  nl.add(CurrentSource{kGround, d, 1e-5});  // force 10 uA into the drain
  nl.add(Mosfet{MosType::kNmos, d, g, kGround, 0.4, 2e-3, 0.0});
  Solution s = solve_dc(nl);
  const double g_ch = 2e-3 * (1.5 - 0.4);
  EXPECT_NEAR(s.node_voltages[d], 1e-5 / g_ch, 1e-4);
}

TEST(Dc, PmosMirrorsNmos) {
  // PMOS source at vdd, gate grounded: vsg = 1.2, overdrive 0.8.
  Netlist nl;
  NodeId vdd = nl.add_node("vdd");
  NodeId d = nl.add_node("d");
  nl.add(VoltageSource{vdd, kGround, 1.2});
  nl.add(Mosfet{MosType::kPmos, d, kGround, vdd, 0.4, 2e-3, 0.0});
  nl.add(Resistor{d, kGround, 1000.0});
  Solution s = solve_dc(nl);
  // Saturation current 0.5*k*(0.8)^2 = 640 uA -> V(d) = 0.64 V; check
  // consistency (device may be in triode depending on V(d)).
  const double vd = s.node_voltages[d];
  EXPECT_GT(vd, 0.3);
  EXPECT_LT(vd, 0.7);
  // KCL at d: pmos current == resistor current.
  const double vsd = 1.2 - vd;
  const double vov = 1.2 - 0.4;
  const double id = vsd < vov ? 2e-3 * (vov * vsd - 0.5 * vsd * vsd)
                              : 0.5 * 2e-3 * vov * vov;
  EXPECT_NEAR(id, vd / 1000.0, 1e-5);
}

TEST(Transient, RcDischargeMatchesAnalytic) {
  // C charged via DC to 5 V through the source, then... simpler: RC decay
  // from an initial condition: V(t) = V0 exp(-t/RC).
  Netlist nl;
  NodeId n = nl.add_node("n");
  nl.add(Resistor{n, kGround, 1000.0});
  nl.add(Capacitor{n, kGround, 1e-6});  // tau = 1 ms
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.dt = 1e-6;
  opt.start_from_dc = false;
  opt.initial_voltages = {0.0, 5.0};
  Transient tr = simulate_transient(nl, opt);
  // Compare at t = 1 ms: 5 e^{-1}; backward Euler at dt/tau = 1e-3 is
  // accurate to ~0.1%.
  const std::size_t idx = 1000;
  EXPECT_NEAR(tr.node_voltages(idx, n), 5.0 * std::exp(-1.0), 5e-3);
}

TEST(Transient, RcChargeToSource) {
  Netlist nl;
  NodeId in = nl.add_node("in");
  NodeId n = nl.add_node("n");
  nl.add(VoltageSource{in, kGround, 3.0});
  nl.add(Resistor{in, n, 1000.0});
  nl.add(Capacitor{n, kGround, 1e-7});  // tau = 0.1 ms
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 1e-6;
  opt.start_from_dc = false;
  opt.initial_voltages = {0.0, 3.0, 0.0};
  Transient tr = simulate_transient(nl, opt);
  // After 10 tau the node reaches the source value.
  EXPECT_NEAR(tr.node_voltages(tr.time.size() - 1, n), 3.0, 1e-3);
  EXPECT_THROW(simulate_transient(nl, TransientOptions{}),
               std::invalid_argument);
}

TEST(Measure, RisingCrossingsAndFrequency) {
  // Synthetic 1 kHz sine sampled at 100 kHz.
  const std::size_t n = 1000;
  linalg::Vector t(n), s(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = static_cast<double>(i) * 1e-5;
    s[i] = std::sin(2.0 * M_PI * 1000.0 * t[i]);
  }
  auto crossings = rising_crossings(t, s, 0.0);
  EXPECT_GE(crossings.size(), 9u);
  EXPECT_NEAR(oscillation_frequency(t, s, 0.0, 4), 1000.0, 1.0);
}

TEST(Measure, TimeAverageAndCrossingTime) {
  linalg::Vector t{0, 1, 2, 3, 4};
  linalg::Vector s{0, 2, 2, 2, 2};
  EXPECT_NEAR(time_average(t, s, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(crossing_time(t, s, 1.0), 0.5, 1e-12);
  EXPECT_THROW(crossing_time(t, s, 5.0), std::runtime_error);
  EXPECT_THROW(time_average(t, s, 10.0), std::invalid_argument);
  EXPECT_THROW(rising_crossings({0.0}, {1.0}, 0.0), std::invalid_argument);
}

TEST(DiffPair, BalancedPairHasZeroOffset) {
  DiffPairParams p;
  EXPECT_NEAR(diff_pair_output_offset(p), 0.0, 1e-6);
  EXPECT_NEAR(diff_pair_input_offset(p), 0.0, 1e-6);
}

TEST(DiffPair, VthMismatchCreatesOffsetOfRightSign) {
  DiffPairParams p;
  p.vth1 = 0.41;  // device 1 harder to turn on -> less current in out_p leg
  const double vod = diff_pair_output_offset(p);
  // Less current through R1 -> V(out_p) rises -> positive differential out.
  EXPECT_GT(vod, 1e-3);
  // Input-referred offset ~ delta_vth for a symmetric pair.
  const double vos = diff_pair_input_offset(p);
  EXPECT_NEAR(vos, -0.01, 0.004);
}

TEST(DiffPair, OffsetLinearInSmallMismatch) {
  DiffPairParams p1, p2;
  p1.vth1 = 0.402;
  p2.vth1 = 0.404;
  const double v1 = diff_pair_input_offset(p1);
  const double v2 = diff_pair_input_offset(p2);
  EXPECT_NEAR(v2 / v1, 2.0, 0.1);
}

TEST(RingOsc, OscillatesAtPlausibleFrequency) {
  RingOscParams p;
  RingOscMeasurement m = measure_ring_oscillator(p);
  EXPECT_GT(m.frequency, 1e8);
  EXPECT_LT(m.frequency, 2e10);
  EXPECT_GT(m.power, 1e-7);
  EXPECT_LT(m.power, 1e-2);
}

TEST(RingOsc, MoreStagesIsSlower) {
  RingOscParams p3, p7;
  p3.stages = 3;
  p7.stages = 7;
  const double f3 = measure_ring_oscillator(p3).frequency;
  const double f7 = measure_ring_oscillator(p7).frequency;
  EXPECT_GT(f3, 1.5 * f7);
}

TEST(RingOsc, WeakerDevicesAreSlower) {
  RingOscParams strong, weak;
  weak.k_n.assign(5, 1.5e-3 * 0.7);
  weak.k_p.assign(5, 1.2e-3 * 0.7);
  const double fs = measure_ring_oscillator(strong).frequency;
  const double fw = measure_ring_oscillator(weak).frequency;
  EXPECT_GT(fs, 1.1 * fw);
}

TEST(RingOsc, ValidatesStages) {
  RingOscParams p;
  p.stages = 4;
  EXPECT_THROW(make_ring_oscillator(p), std::invalid_argument);
  p.stages = 1;
  EXPECT_THROW(make_ring_oscillator(p), std::invalid_argument);
  p.stages = 5;
  p.k_n.assign(3, 1e-3);  // wrong size
  EXPECT_THROW(make_ring_oscillator(p), std::invalid_argument);
}

}  // namespace
}  // namespace bmf::spice
