// End-to-end daemon tests over a real UNIX-domain socket: a Server on a
// background thread, Clients in the test thread. Also the TSan proof that
// the registry/evaluator stack is race-free under a live server.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "serve/client.hpp"
#include "serve/model_codec.hpp"
#include "serve/protocol.hpp"
#include "stats/rng.hpp"

namespace bmf::serve {
namespace {

FittedModel make_model(std::size_t dim, std::uint64_t seed) {
  auto b = basis::BasisSet::linear(dim);
  stats::Rng rng(seed);
  linalg::Vector coeffs(b.size());
  for (double& c : coeffs) c = rng.normal();
  FittedModel fitted;
  fitted.model = basis::PerformanceModel(b, coeffs);
  fitted.provenance = PriorProvenance::kZeroMean;
  fitted.tau = 0.5;
  fitted.num_samples = 40;
  return fitted;
}

linalg::Matrix make_points(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Matrix p(rows, cols);
  for (std::size_t i = 0; i < p.size(); ++i) p.data()[i] = rng.normal();
  return p;
}

/// Server on a background thread; joins on destruction (after stop).
class ServerFixture {
 public:
  explicit ServerFixture(const char* tag, ServerOptions options = {}) {
    path_ = ::testing::TempDir() + "/bmf_serve_" + tag + "_" +
            std::to_string(::getpid()) + ".sock";
    options.socket_path = path_;
    server_ = std::make_unique<Server>(std::move(options));
    thread_ = std::thread([this] { server_->run(); });
  }

  ~ServerFixture() {
    server_->request_stop();
    thread_.join();
    std::remove(path_.c_str());
  }

  const std::string& path() const { return path_; }
  Server& server() { return *server_; }

 private:
  std::string path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST(ServeServer, PingPublishEvaluateList) {
  ServerFixture fixture("basic");
  Client client(fixture.path());
  client.ping();

  const FittedModel model = make_model(4, 1);
  EXPECT_EQ(client.publish("ro_power", model), 1u);
  EXPECT_EQ(client.publish("ro_power", model), 2u);

  const auto points = make_points(50, 4, 2);
  const auto result = client.evaluate("ro_power", points);
  EXPECT_EQ(result.version, 2u);
  ASSERT_EQ(result.values.size(), 50u);
  const BatchEvaluator local;
  EXPECT_EQ(result.values, local.evaluate(model.model, points));

  // Version pinning addresses the older model even after the hot swap.
  const auto pinned = client.evaluate("ro_power", points, 1);
  EXPECT_EQ(pinned.version, 1u);

  const auto models = client.list();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].name, "ro_power");
  EXPECT_EQ(models[0].latest_version, 2u);
  EXPECT_EQ(models[0].retained, 2u);
  EXPECT_EQ(models[0].dimension, 4u);
}

TEST(ServeServer, StructuredErrorsKeepTheConnectionUsable) {
  ServerFixture fixture("errors");
  Client client(fixture.path());

  // Unknown model.
  try {
    client.evaluate("ghost", make_points(1, 3, 1));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kNotFound);
    EXPECT_EQ(e.context(), "evaluate");
    EXPECT_NE(e.message().find("ghost"), std::string::npos);
  }

  // Corrupt publish blob.
  auto blob = serialize_model(make_model(3, 5));
  blob[blob.size() / 2] ^= 0x01;
  try {
    client.publish_blob("bad", blob);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kCorruptModel);
  }

  // Dimension mismatch against a published model.
  client.publish("dim3", make_model(3, 6));
  try {
    client.evaluate("dim3", make_points(2, 5, 7));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  // Evicted version.
  try {
    client.evaluate("dim3", make_points(1, 3, 8), 99);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kNotFound);
  }

  // After all those failures the same connection still works.
  client.ping();
  EXPECT_EQ(client.evaluate("dim3", make_points(2, 3, 9)).values.size(), 2u);
}

TEST(ServeServer, GracefulShutdownViaProtocol) {
  auto fixture = std::make_unique<ServerFixture>("shutdown");
  const std::string path = fixture->path();
  {
    Client client(path);
    client.publish("m", make_model(2, 3));
    client.shutdown_server();  // acknowledged before the server exits
  }
  // The fixture destructor joins promptly because run() already returned.
  fixture.reset();
  // The daemon is gone: connecting now must time out quickly.
  EXPECT_THROW(Client(path, /*timeout_ms=*/200), ServeError);
}

TEST(ServeServer, SequentialClientsAndReconnects) {
  ServerFixture fixture("reconnect");
  {
    Client first(fixture.path());
    first.publish("m", make_model(2, 4));
  }  // connection closes cleanly
  {
    Client second(fixture.path());
    const auto result = second.evaluate("m", make_points(3, 2, 5));
    EXPECT_EQ(result.values.size(), 3u);
  }
  EXPECT_GE(fixture.server().requests_served(), 2u);
}

TEST(ServeServer, MalformedFrameGetsStructuredReply) {
  ServerFixture fixture("malformed");
  UniqueFd fd = connect_unix(fixture.path(), 2000);
  const std::vector<std::uint8_t> garbage = {0x77, 0x01, 0x02};
  write_frame(fd.get(), garbage, 1000);
  const auto reply = read_frame(fd.get(), 2000);
  ASSERT_TRUE(reply.has_value());
  try {
    expect_ok(*reply);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
    EXPECT_EQ(e.context(), "decode_request");
  }
}

TEST(ServeServer, OversizedFrameIsRejected) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  ServerFixture fixture("oversized", options);
  UniqueFd fd = connect_unix(fixture.path(), 2000);
  // Hand-write a raw length prefix beyond the server's bound; the server
  // must reply kTooLarge before allocating anything (and then drop the
  // connection, since the stream position is lost).
  const std::uint32_t huge = 1 << 20;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i)
    prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  ::ssize_t wrote = ::write(fd.get(), prefix, sizeof(prefix));
  ASSERT_EQ(wrote, 4);
  const auto reply = read_frame(fd.get(), 2000);
  ASSERT_TRUE(reply.has_value());
  try {
    expect_ok(*reply);
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kTooLarge);
  }
}

TEST(ServeServer, StaleSocketFileIsRecoveredAtStartup) {
  // A crashed daemon leaves its socket file behind: bind one, close the
  // listener without unlinking. A fresh Server must probe the corpse,
  // reclaim the path, and serve normally.
  const std::string path = ::testing::TempDir() + "/bmf_serve_stale_" +
                           std::to_string(::getpid()) + ".sock";
  std::remove(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ::close(fd);  // dead daemon; the file stays

  ServerOptions options;
  options.socket_path = path;
  auto server = std::make_unique<Server>(std::move(options));
  std::thread run([&server] { server->run(); });
  {
    Client client(path);
    client.ping();
  }
  server->request_stop();
  run.join();
  server.reset();
  std::remove(path.c_str());
}

TEST(ServeServer, LiveDaemonSocketIsNotStolen) {
  ServerFixture fixture("occupied");
  // Binding a second server to a path owned by a live daemon must fail
  // loudly instead of unlinking it out from under the running server.
  ServerOptions options;
  options.socket_path = fixture.path();
  try {
    Server squatter(std::move(options));
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.status(), Status::kInternal);
    EXPECT_NE(e.message().find("in use"), std::string::npos);
  }
  // The incumbent is unharmed.
  Client client(fixture.path());
  client.ping();
}

TEST(ServeServer, ResponsesAreBitIdenticalAcrossConnections) {
  ServerFixture fixture("bits");
  const auto points = make_points(257, 8, 12);
  Client::Evaluation a;
  {
    Client client(fixture.path());
    client.publish("m", make_model(8, 11));
    a = client.evaluate("m", points);
  }
  Client other(fixture.path());
  const auto b = other.evaluate("m", points);
  EXPECT_EQ(a.values, b.values);
}

}  // namespace
}  // namespace bmf::serve
