#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bmf::linalg {
namespace {

TEST(Blas, Dot) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(dot({1}, {1, 2}), std::invalid_argument);
}

TEST(Blas, Axpy) {
  Vector y{1, 1};
  axpy(2.0, {3, 4}, y);
  EXPECT_EQ(y, (Vector{7, 9}));
}

TEST(Blas, ScalAndNorms) {
  Vector x{3, -4};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
  scal(2.0, x);
  EXPECT_EQ(x, (Vector{6, -8}));
}

TEST(Blas, AddSub) {
  EXPECT_EQ(add({1, 2}, {3, 4}), (Vector{4, 6}));
  EXPECT_EQ(sub({1, 2}, {3, 4}), (Vector{-2, -2}));
}

TEST(Blas, Gemv) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(gemv(a, {1, 1}), (Vector{3, 7, 11}));
  EXPECT_EQ(gemv_t(a, {1, 1, 1}), (Vector{9, 12}));
  EXPECT_THROW(gemv(a, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(gemv_t(a, {1, 2}), std::invalid_argument);
}

TEST(Blas, GemmSmall) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = gemm(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Blas, GemmShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(gemm(a, b), std::invalid_argument);
}

TEST(Blas, GemmMatchesNaiveOnRectangular) {
  // Sizes chosen to exercise partial blocks (kBlock = 64).
  const std::size_t m = 70, k = 65, n = 3;
  Matrix a(m, k), b(k, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j)
      a(i, j) = std::sin(static_cast<double>(i * k + j));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b(i, j) = std::cos(static_cast<double>(i * n + j));
  Matrix c = gemm(a, b);
  for (std::size_t i = 0; i < m; i += 17)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
}

TEST(Blas, GemmTnMatchesExplicitTranspose) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix b{{1, 0}, {0, 1}, {1, 1}};
  Matrix c = gemm_tn(a, b);
  Matrix expect = gemm(a.transposed(), b);
  EXPECT_LT(max_abs_diff(c, expect), 1e-14);
}

TEST(Blas, GemmNtMatchesExplicitTranspose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{1, 1, 0}, {0, 2, 1}};
  Matrix c = gemm_nt(a, b);
  Matrix expect = gemm(a, b.transposed());
  EXPECT_LT(max_abs_diff(c, expect), 1e-14);
}

TEST(Blas, GramIsSymmetricAndCorrect) {
  Matrix g{{1, 2, 0}, {0, 1, 1}, {2, 0, 1}, {1, 1, 1}};
  Matrix c = gram(g);
  Matrix expect = gemm(g.transposed(), g);
  EXPECT_LT(max_abs_diff(c, expect), 1e-14);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
}

TEST(Blas, OuterGramWeighted) {
  Matrix g{{1, 2}, {0, 3}};
  Vector d{2, 1};
  // G diag(d) G^T = [[1,2],[0,3]] [[2,0],[0,1]] [[1,0],[2,3]]
  Matrix c = outer_gram_weighted(g, d);
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 2 * 1 + 2 * 1 * 2);  // 6
  EXPECT_DOUBLE_EQ(c(0, 1), 1 * 2 * 0 + 2 * 1 * 3);  // 6
  EXPECT_DOUBLE_EQ(c(1, 0), c(0, 1));
  EXPECT_DOUBLE_EQ(c(1, 1), 9);
  EXPECT_THROW(outer_gram_weighted(g, {1.0}), std::invalid_argument);
}

TEST(Blas, GemvScaled) {
  Matrix g{{1, 2}, {0, 3}};
  Vector d{2, 1};
  Vector z{1, 1};
  // G * (d .* z) = G * [2, 1]^T = [4, 3]^T
  EXPECT_EQ(gemv_scaled(g, d, z), (Vector{4, 3}));
}

// --- Microkernel tail handling -------------------------------------------
//
// The register-blocked gemm family packs into fixed 4x8 tiles with
// zero-padding; these sizes deliberately miss every tile boundary (odd
// primes, just-below and just-above multiples of 4/8, and a k spanning
// several 512-wide p-blocks via the k=1050 case).

Matrix fill(std::size_t r, std::size_t c, double phase) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      m(i, j) = std::sin(phase + static_cast<double>(i * c + j));
  return m;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  return c;
}

class GemmTails
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmTails, AllVariantsMatchNaive) {
  const auto [m, n, k] = GetParam();
  Matrix a = fill(m, k, 0.1), b = fill(k, n, 0.7);
  Matrix expect = naive_gemm(a, b);
  const double tol = 1e-12 * (static_cast<double>(k) + 1.0);
  EXPECT_LT(max_abs_diff(gemm(a, b), expect), tol);
  EXPECT_LT(max_abs_diff(gemm_tn(a.transposed(), b), expect), tol);
  EXPECT_LT(max_abs_diff(gemm_nt(a, b.transposed()), expect), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Tails, GemmTails,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 7, 5),
                      std::make_tuple(5, 9, 13), std::make_tuple(4, 8, 16),
                      std::make_tuple(13, 17, 31), std::make_tuple(67, 3, 129),
                      std::make_tuple(31, 33, 1050)));

TEST(Blas, GemvFamilyMatchesNaiveAboveParallelCutoff) {
  // 300x300 exceeds the parallel flop cutoff, exercising the threaded rows
  // path; spot-check against a scalar loop.
  const std::size_t n = 300;
  Matrix g = fill(n, n, 0.3);
  Vector x(n), d(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(0.2 + static_cast<double>(i));
    d[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i));
    z[i] = std::sin(1.1 * static_cast<double>(i));
  }
  Vector y = gemv(g, x), yt = gemv_t(g, x), ys = gemv_scaled(g, d, z);
  for (std::size_t i = 0; i < n; i += 41) {
    double s = 0.0, st = 0.0, ss = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      s += g(i, j) * x[j];
      st += g(j, i) * x[j];
      ss += g(i, j) * d[j] * z[j];
    }
    EXPECT_NEAR(y[i], s, 1e-10);
    EXPECT_NEAR(yt[i], st, 1e-10);
    EXPECT_NEAR(ys[i], ss, 1e-10);
  }
}

}  // namespace
}  // namespace bmf::linalg
