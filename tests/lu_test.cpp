#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "stats/rng.hpp"

namespace bmf::linalg {
namespace {

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{0, 2}, {1, 1}};  // needs pivoting (zero leading pivot)
  Vector x = lu_solve(a, {4, 3});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(Lu{Matrix(2, 3)}, std::invalid_argument);
}

TEST(Lu, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(Lu{a}, std::runtime_error);
}

TEST(Lu, SolveSizeMismatchThrows) {
  Lu lu(Matrix{{1, 0}, {0, 1}});
  EXPECT_THROW(lu.solve({1, 2, 3}), std::invalid_argument);
}

class LuRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandom, ResidualSmall) {
  const std::size_t n = GetParam();
  stats::Rng rng(700 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Vector b = rng.normal_vector(n);
  Vector x = lu_solve(a, b);
  Vector r = sub(gemv(a, x), b);
  EXPECT_LT(norm2(r), 1e-9 * (1.0 + norm2(b))) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandom,
                         ::testing::Values(1, 2, 3, 7, 15, 40, 80));

TEST(Lu, UnsymmetricSystem) {
  // A deliberately unsymmetric (MNA-like) matrix with a controlled source.
  Matrix a{{2, -1, 0}, {-1, 3, 5}, {0.5, 0, 1}};
  Vector truth{1.0, -2.0, 0.5};
  Vector b = gemv(a, truth);
  Vector x = lu_solve(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], truth[i], 1e-10);
}

TEST(Lu, PivotRatioAndLogDet) {
  Matrix a{{4, 0}, {0, 0.25}};
  Lu lu(a);
  EXPECT_NEAR(lu.min_max_pivot_ratio(), 0.0625, 1e-12);
  EXPECT_NEAR(lu.log_abs_det(), std::log(1.0), 1e-12);
}

TEST(Lu, RepeatedSolvesWithOneFactorization) {
  stats::Rng rng(9);
  const std::size_t n = 10;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Lu lu(a);
  for (int rep = 0; rep < 3; ++rep) {
    Vector b = rng.normal_vector(n);
    Vector x = lu.solve(b);
    EXPECT_LT(norm2(sub(gemv(a, x), b)), 1e-9);
  }
}

}  // namespace
}  // namespace bmf::linalg
