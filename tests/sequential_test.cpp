#include "bmf/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace bmf::core {
namespace {

// Three-stage world: schematic truth -> post-layout truth (drifted) ->
// silicon truth (drifted again).
struct World {
  basis::BasisSet basis;
  linalg::Vector w_schematic, w_layout, w_silicon;
};

World make_world(std::size_t r, std::uint64_t seed) {
  stats::Rng rng(seed);
  World w;
  w.basis = basis::BasisSet::linear(r);
  w.w_schematic.assign(r + 1, 0.0);
  w.w_schematic[0] = 1.0;
  for (std::size_t j = 1; j <= r; ++j)
    w.w_schematic[j] = 0.05 * rng.normal() / std::sqrt(static_cast<double>(j));
  auto drift = [&](const linalg::Vector& in) {
    linalg::Vector out = in;
    for (std::size_t j = 1; j < out.size(); ++j)
      out[j] *= 1.0 + 0.10 * rng.normal();
    return out;
  };
  w.w_layout = drift(w.w_schematic);
  w.w_silicon = drift(w.w_layout);
  return w;
}

struct Data {
  linalg::Matrix points;
  linalg::Vector f;
};

Data sample(const World& w, const linalg::Vector& truth, std::size_t n,
            double noise, stats::Rng& rng) {
  const std::size_t r = w.basis.dimension();
  Data d{linalg::Matrix(n, r), linalg::Vector(n)};
  for (std::size_t i = 0; i < n; ++i) {
    d.f[i] = truth[0];
    for (std::size_t j = 0; j < r; ++j) {
      const double x = rng.normal();
      d.points(i, j) = x;
      d.f[i] += truth[j + 1] * x;
    }
    d.f[i] += rng.normal(0.0, noise);
  }
  return d;
}

TEST(SequentialFusion, ValidatesConstruction) {
  EXPECT_THROW(SequentialFusion(basis::BasisSet::linear(3), {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(SequentialFusion(basis::BasisSet::linear(1), {1.0, 2.0},
                                {1, 1, 1}),
               std::invalid_argument);
}

TEST(SequentialFusion, StageBookkeeping) {
  World w = make_world(20, 1);
  stats::Rng rng(2);
  SequentialFusion seq(w.basis, w.w_schematic);
  EXPECT_EQ(seq.stage(), 0u);
  Data d = sample(w, w.w_layout, 30, 0.002, rng);
  seq.advance(d.points, d.f);
  EXPECT_EQ(seq.stage(), 1u);
  for (char c : seq.current_informative()) EXPECT_TRUE(c);
}

TEST(SequentialFusion, AdvanceUpdatesPriorTowardStageTruth) {
  World w = make_world(40, 3);
  stats::Rng rng(4);
  SequentialFusion seq(w.basis, w.w_schematic);
  Data d = sample(w, w.w_layout, 60, 0.002, rng);
  seq.advance(d.points, d.f);
  // The fused coefficients should be closer to the layout truth than the
  // schematic prior was.
  double before = 0.0, after = 0.0;
  for (std::size_t j = 0; j < w.w_layout.size(); ++j) {
    before += std::abs(w.w_schematic[j] - w.w_layout[j]);
    after += std::abs(seq.current_coefficients()[j] - w.w_layout[j]);
  }
  EXPECT_LT(after, 0.7 * before);
}

TEST(SequentialFusion, ThreeStageChainBeatsSkippingTheMiddleStage) {
  // Silicon stage has very few "measured chips": chaining through the
  // post-layout stage must beat fusing schematic -> silicon directly.
  World w = make_world(60, 5);
  stats::Rng rng(6);
  Data layout_data = sample(w, w.w_layout, 80, 0.002, rng);
  Data silicon_data = sample(w, w.w_silicon, 15, 0.002, rng);
  Data test = sample(w, w.w_silicon, 300, 0.0, rng);

  SequentialFusion chained(w.basis, w.w_schematic);
  chained.advance(layout_data.points, layout_data.f);
  FusionResult fused = chained.advance(silicon_data.points, silicon_data.f);

  SequentialFusion direct(w.basis, w.w_schematic);
  FusionResult direct_res =
      direct.advance(silicon_data.points, silicon_data.f);

  const double err_chained =
      stats::relative_error(fused.model.predict(test.points), test.f);
  const double err_direct =
      stats::relative_error(direct_res.model.predict(test.points), test.f);
  EXPECT_LT(err_chained, err_direct);
}

TEST(SequentialFusion, RepeatedStagesKeepImproving) {
  World w = make_world(30, 7);
  stats::Rng rng(8);
  SequentialFusion seq(w.basis, w.w_schematic);
  Data test = sample(w, w.w_silicon, 200, 0.0, rng);
  double prev_err = 1e9;
  for (int stage = 0; stage < 3; ++stage) {
    Data d = sample(w, w.w_silicon, 25, 0.002, rng);
    FusionResult res = seq.advance(d.points, d.f);
    const double err =
        stats::relative_error(res.model.predict(test.points), test.f);
    EXPECT_LT(err, prev_err * 1.5);  // no catastrophic regressions
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.01);
}

}  // namespace
}  // namespace bmf::core
