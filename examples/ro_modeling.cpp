// Ring-oscillator performance modeling (the paper's Section V-A flow) with
// CLI knobs:
//
//   $ ./examples/ro_modeling --metric power --vars 1500 --k 100 --seed 7
//
// Fits all four methods at the requested training budget, reports the
// relative error, the selected prior / hyper-parameter, and the CV curve.
#include <iostream>
#include <string>

#include "bmf/fusion.hpp"
#include "circuit/testcases.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "regress/omp.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const std::string metric_name = args.get("metric", "power");
  const std::size_t vars =
      static_cast<std::size_t>(args.get_int("vars", 1000));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 100));
  const std::uint64_t seed = args.get_seed("seed", 7);

  circuit::RoMetric metric = circuit::RoMetric::kPower;
  if (metric_name == "phase-noise") metric = circuit::RoMetric::kPhaseNoise;
  else if (metric_name == "frequency") metric = circuit::RoMetric::kFrequency;
  else if (metric_name != "power") {
    std::cerr << "unknown --metric (power | phase-noise | frequency)\n";
    return 1;
  }

  std::cout << "Ring-oscillator " << metric_name << " model, " << vars
            << " variables, K = " << k << " post-layout samples\n\n";
  circuit::Testcase tc = circuit::ring_oscillator_testcase(metric, vars, seed);

  stats::Rng rng(seed + 1);
  circuit::Dataset train = tc.silicon.sample_late(k, rng);
  circuit::Dataset test = tc.silicon.sample_late(300, rng);
  auto err = [&](const basis::PerformanceModel& m) {
    return 100.0 * stats::relative_error(m.predict(test.points), test.f);
  };

  io::Table table({"Method", "rel. error (%)", "notes"});
  {
    regress::OmpOptions opt;
    opt.seed = seed;
    auto m = regress::omp_fit(tc.silicon.late_basis(), train.points, train.f,
                              opt);
    table.add_row({"OMP", io::Table::num(err(m)),
                   std::to_string(m.num_significant(0.0)) + " terms"});
  }
  core::BmfFitter fitter(tc.silicon.late_basis(), tc.early_coeffs,
                         tc.informative, {});
  fitter.set_data(train.points, train.f);
  for (auto sel : {core::PriorSelection::kZeroMean,
                   core::PriorSelection::kNonzeroMean,
                   core::PriorSelection::kAuto}) {
    core::FusionResult res = fitter.fit(sel);
    table.add_row({to_string(sel), io::Table::num(err(res.model)),
                   std::string("tau = ") +
                       io::Table::sci(res.report.chosen_tau) +
                       " (cv err " +
                       io::Table::num(100.0 * res.report.cv_error, 3) +
                       "%)"});
  }
  std::cout << table << "\n";

  // CV curve of the selected prior — the Section IV-D machinery at work.
  core::FusionResult res = fitter.fit(core::PriorSelection::kAuto);
  const core::CvCurve& curve =
      res.report.chosen_kind == core::PriorKind::kZeroMean
          ? *res.report.zm_curve
          : *res.report.nzm_curve;
  std::cout << "CV curve of the selected prior ("
            << to_string(res.report.chosen_kind) << "):\n";
  io::Table cv({"tau", "cv error (%)"});
  for (std::size_t i = 0; i < curve.taus.size(); i += 2)
    cv.add_row({io::Table::sci(curve.taus[i]),
                io::Table::num(100.0 * curve.errors[i], 3)});
  std::cout << cv;
  return 0;
}
