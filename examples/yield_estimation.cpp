// Downstream application the paper motivates (Section I): once a late-stage
// performance model is fused, use it for parametric yield estimation and
// worst-case corner extraction — thousands of model evaluations instead of
// thousands of SPICE runs.
//
//   $ ./examples/yield_estimation --vars 800 --k 100 --spec 1.08
#include <cmath>
#include <iostream>

#include "bmf/fusion.hpp"
#include "circuit/testcases.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "linalg/blas.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const std::size_t vars = static_cast<std::size_t>(args.get_int("vars", 800));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 100));
  // Power spec as a multiple of nominal.
  const double spec_rel = args.get_double("spec", 1.08);
  const std::uint64_t seed = args.get_seed("seed", 5);

  circuit::Testcase tc =
      circuit::ring_oscillator_testcase(circuit::RoMetric::kPower, vars, seed);
  const double spec = spec_rel * tc.silicon.late_truth()[0];
  std::cout << "RO power yield analysis: spec = " << spec << " W ("
            << spec_rel << " x nominal), " << vars << " variables\n\n";

  // Fuse a late-stage model from K samples.
  stats::Rng rng(seed + 1);
  circuit::Dataset train = tc.silicon.sample_late(k, rng);
  core::FusionResult fused =
      core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs, tc.informative,
                    train.points, train.f);

  // Parametric yield: P(power <= spec). Model-based Monte Carlo is cheap;
  // the "simulator" yield uses the silicon ground truth as reference.
  const std::size_t n_mc = 100000;
  std::size_t pass_model = 0, pass_true = 0;
  linalg::Vector x(vars);
  for (std::size_t i = 0; i < n_mc; ++i) {
    for (double& v : x) v = rng.normal();
    if (fused.model.predict(x) <= spec) ++pass_model;
    if (tc.silicon.evaluate_late_exact(x) <= spec) ++pass_true;
  }
  const double yield_model = 100.0 * pass_model / n_mc;
  const double yield_true = 100.0 * pass_true / n_mc;

  io::Table table({"Quantity", "fused model", "reference (true silicon)"});
  table.add_row({"Parametric yield (%)", io::Table::num(yield_model, 2),
                 io::Table::num(yield_true, 2)});

  // Worst-case corner (3-sigma ball): for a linear model the worst
  // direction is the (non-constant) coefficient vector itself.
  auto corner_of = [&](const linalg::Vector& coeffs) {
    linalg::Vector dir(vars);
    for (std::size_t v = 0; v < vars; ++v) dir[v] = coeffs[1 + v];
    const double norm = linalg::norm2(dir);
    for (double& d : dir) d *= 3.0 / norm;
    return dir;
  };
  linalg::Vector corner_model = corner_of(fused.model.coefficients());
  linalg::Vector corner_true = corner_of(tc.silicon.late_truth());
  table.add_row(
      {"Power at 3-sigma worst-case corner (W)",
       io::Table::num(tc.silicon.evaluate_late_exact(corner_model), 6),
       io::Table::num(tc.silicon.evaluate_late_exact(corner_true), 6)});
  const double cosine =
      linalg::dot(corner_model, corner_true) /
      (linalg::norm2(corner_model) * linalg::norm2(corner_true));
  table.add_row({"Corner direction alignment (cos)", io::Table::num(cosine),
                 "1.0000"});
  std::cout << table;
  std::cout << "\n(" << n_mc << " Monte Carlo points; the fused model "
            << "replaces that many transistor-level simulations)\n";
  return 0;
}
