// SRAM read-path delay modeling (the paper's Section V-B flow):
//
//   $ ./examples/sram_modeling --vars 4000 --k 100
//
// Demonstrates the cost accounting of Table VI: how many simulation hours
// the early-stage prior saves at equal accuracy.
#include <iostream>

#include "bmf/fusion.hpp"
#include "circuit/testcases.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "regress/omp.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const std::size_t vars =
      static_cast<std::size_t>(args.get_int("vars", 2000));
  const std::size_t k_bmf = static_cast<std::size_t>(args.get_int("k", 100));
  const std::uint64_t seed = args.get_seed("seed", 11);

  std::cout << "SRAM read path, " << vars << " variation variables\n";
  circuit::Testcase tc = circuit::sram_read_path_testcase(vars, seed);

  stats::Rng rng(seed + 1);
  circuit::Dataset train = tc.silicon.sample_late(400, rng);
  circuit::Dataset test = tc.silicon.sample_late(300, rng);
  auto err = [&](const basis::PerformanceModel& m) {
    return 100.0 * stats::relative_error(m.predict(test.points), test.f);
  };

  // BMF with k_bmf samples.
  linalg::Matrix pts_bmf = train.points.block(0, 0, k_bmf, vars);
  linalg::Vector f_bmf(train.f.begin(), train.f.begin() + k_bmf);
  core::FusionResult fused = core::bmf_fit(
      tc.silicon.late_basis(), tc.early_coeffs, tc.informative, pts_bmf,
      f_bmf);

  // OMP needs the full 400-sample budget to compete.
  regress::OmpOptions oopt;
  oopt.seed = seed;
  auto omp_model =
      regress::omp_fit(tc.silicon.late_basis(), train.points, train.f, oopt);

  io::Table table({"Method", "samples", "rel. error (%)",
                   "simulated hours (extrapolated)"});
  table.add_row({"OMP", "400", io::Table::num(err(omp_model)),
                 io::Table::num(tc.simulation_hours(400), 2)});
  table.add_row({std::string("BMF-PS (") +
                     to_string(fused.report.chosen_kind) + ")",
                 std::to_string(k_bmf), io::Table::num(err(fused.model)),
                 io::Table::num(tc.simulation_hours(k_bmf), 2)});
  std::cout << table;
  std::cout << "\nSimulation-cost ratio: "
            << io::Table::num(tc.simulation_hours(400) /
                                  tc.simulation_hours(k_bmf),
                              1)
            << "x in favor of BMF (paper Table VI: ~4x)\n";
  return 0;
}
