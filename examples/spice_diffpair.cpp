// End-to-end BMF on a *real* simulator: the differential-pair offset
// example of the paper's Section IV-A (Eq. 36/37), run entirely through
// the built-in MNA engine.
//
//   schematic stage: two input devices, Vth mismatch variables x1, x2
//       -> fit the early offset model from schematic DC sweeps
//   post-layout stage: each input device becomes TWO fingers (prior
//       mapping, beta = alpha/sqrt(2)), and the extracted netlist gains
//       load-resistor mismatch variables with NO early-stage counterpart
//       (missing prior)
//   -> BMF fuses the mapped prior with a few post-layout simulations.
//
//   $ ./examples/spice_diffpair --train 25 --seed 3
#include <cmath>
#include <iostream>

#include "bmf/fusion.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "regress/least_squares.hpp"
#include "regress/omp.hpp"
#include "spice/circuits.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmf;

constexpr double kVthNominal = 0.4;
constexpr double kSigmaVthDevice = 5e-3;  // 5 mV device-level mismatch
constexpr double kSigmaRes = 0.01;        // 1% load-resistor mismatch

// Schematic-level "SPICE run": single device per side.
double simulate_schematic(const linalg::Vector& x) {
  spice::DiffPairParams p;
  p.vth1 = kVthNominal + kSigmaVthDevice * x[0];
  p.vth2 = kVthNominal + kSigmaVthDevice * x[1];
  return spice::diff_pair_input_offset(p);
}

// Post-layout "SPICE run": two fingers per device (each with half the
// transconductance and sqrt(2) larger mismatch, the standard area
// scaling), plus load-resistor mismatch from layout extraction.
// x = [x11 x12 x21 x22 xr1 xr2].
double simulate_postlayout(const linalg::Vector& x) {
  const double sf = kSigmaVthDevice * std::sqrt(2.0);
  spice::DiffPairParams p;
  spice::DiffPairCircuit c;
  {
    spice::DiffPairParams base;
    c.netlist = spice::Netlist();
    c.vdd = c.netlist.add_node("vdd");
    c.in_p = c.netlist.add_node("in_p");
    c.in_n = c.netlist.add_node("in_n");
    c.out_p = c.netlist.add_node("out_p");
    c.out_n = c.netlist.add_node("out_n");
    c.tail = c.netlist.add_node("tail");
    auto& nl = c.netlist;
    nl.add(spice::VoltageSource{c.vdd, spice::kGround, base.vdd});
    nl.add(spice::VoltageSource{c.in_p, spice::kGround, base.vbias});
    nl.add(spice::VoltageSource{c.in_n, spice::kGround, base.vbias});
    nl.add(spice::Resistor{c.vdd, c.out_p,
                           base.rload * (1.0 + kSigmaRes * x[4])});
    nl.add(spice::Resistor{c.vdd, c.out_n,
                           base.rload * (1.0 + kSigmaRes * x[5])});
    // Two fingers per input device.
    for (int f = 0; f < 2; ++f) {
      nl.add(spice::Mosfet{spice::MosType::kNmos, c.out_p, c.in_p, c.tail,
                           kVthNominal + sf * x[f], base.k1 / 2.0,
                           base.lambda});
      nl.add(spice::Mosfet{spice::MosType::kNmos, c.out_n, c.in_n, c.tail,
                           kVthNominal + sf * x[2 + f], base.k2 / 2.0,
                           base.lambda});
    }
    nl.add(spice::CurrentSource{c.tail, spice::kGround, base.itail});
  }
  // Offset = differential output / differential gain (finite difference).
  auto vod_at = [&](double dvin) {
    c.netlist.voltage_sources()[1].volts = 0.7 + dvin;
    spice::Solution s = spice::solve_dc(c.netlist);
    return s.node_voltages[c.out_p] - s.node_voltages[c.out_n];
  };
  const double vod = vod_at(0.0);
  const double gain = (vod_at(1e-4) - vod_at(-1e-4)) / 2e-4;
  return vod / gain;
}

}  // namespace

int main(int argc, char** argv) {
  io::Args args(argc, argv);
  const std::size_t k_train =
      static_cast<std::size_t>(args.get_int("train", 25));
  stats::Rng rng(args.get_seed("seed", 3));

  // --- Early stage: fit the schematic offset model (Eq. 36) -------------
  std::cout << "Fitting schematic offset model from 200 schematic-level DC "
               "simulations...\n";
  const std::size_t n_early = 200;
  linalg::Matrix xe(n_early, 2);
  linalg::Vector fe(n_early);
  for (std::size_t i = 0; i < n_early; ++i) {
    linalg::Vector x = rng.normal_vector(2);
    xe.set_row(i, x);
    fe[i] = simulate_schematic(x);
  }
  auto early =
      regress::least_squares_fit(basis::BasisSet::linear(2), xe, fe);
  std::cout << "  V_os ~ " << early.coefficients()[1] << " * x1 + "
            << early.coefficients()[2] << " * x2 + "
            << early.coefficients()[0] << "\n";

  // --- Prior mapping (Eq. 49): 2 fingers each + 2 parasitic variables ----
  core::MultifingerMap map({2, 2}, 2);
  core::MappedPrior mapped = map.map_linear_model(early);
  std::cout << "Mapped prior over " << map.num_late_vars()
            << " post-layout variables (beta = alpha/sqrt(2); resistor "
               "mismatch terms have missing prior)\n\n";

  // --- Late stage: a few post-layout simulations -------------------------
  linalg::Matrix xl(k_train, 6);
  linalg::Vector fl(k_train);
  for (std::size_t i = 0; i < k_train; ++i) {
    linalg::Vector x = rng.normal_vector(6);
    xl.set_row(i, x);
    fl[i] = simulate_postlayout(x);
  }
  core::BmfFitter fitter(mapped);
  fitter.set_data(xl, fl);
  core::FusionResult fused = fitter.fit();

  // --- Evaluate on fresh post-layout simulations -------------------------
  const std::size_t n_test = 100;
  linalg::Matrix xt(n_test, 6);
  linalg::Vector ft(n_test);
  for (std::size_t i = 0; i < n_test; ++i) {
    linalg::Vector x = rng.normal_vector(6);
    xt.set_row(i, x);
    ft[i] = simulate_postlayout(x);
  }
  auto err = [&](const basis::PerformanceModel& m) {
    return 100.0 * stats::relative_error(m.predict(xt), ft);
  };

  basis::PerformanceModel prior_only(mapped.late_basis, mapped.early_coeffs);
  regress::OmpOptions oopt;
  auto omp_model = regress::omp_fit(mapped.late_basis, xl, fl, oopt);

  io::Table table({"Method", "rel. error (%)"});
  table.add_row({"mapped schematic prior, no late data",
                 io::Table::num(err(prior_only))});
  table.add_row({std::string("OMP on ") + std::to_string(k_train) +
                     " post-layout runs",
                 io::Table::num(err(omp_model))});
  table.add_row({std::string("BMF (") + to_string(fused.report.chosen_kind) +
                     ", " + std::to_string(k_train) + " post-layout runs)",
                 io::Table::num(err(fused.model))});
  std::cout << table;

  std::cout << "\nFused post-layout coefficients (finger terms + parasitic "
               "resistor terms):\n";
  for (std::size_t m = 0; m < fused.model.num_terms(); ++m)
    std::cout << "  " << mapped.late_basis.term(m).to_string() << " : "
              << fused.model.coefficients()[m]
              << (mapped.informative[m] ? "" : "   [no prior]") << "\n";
  return 0;
}
