// Quickstart: fuse an early-stage (schematic) model with a handful of
// late-stage (post-layout) samples and compare against fitting from
// scratch.
//
//   $ ./examples/quickstart
//
// Walks the exact flow of the paper's Algorithm 1 on a small synthetic
// circuit metric (200 variation variables, 50 late-stage samples).
#include <iostream>

#include "bmf/fusion.hpp"
#include "circuit/testcases.hpp"
#include "regress/omp.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace bmf;

  // 1. A "circuit": ring-oscillator power over 200 variation variables.
  //    The testcase carries the schematic-level model (fit by OMP on 3000
  //    schematic Monte Carlo samples, exactly as in the paper).
  circuit::Testcase tc =
      circuit::ring_oscillator_testcase(circuit::RoMetric::kPower, 200);
  std::cout << "Circuit: " << tc.circuit << ", metric: " << tc.metric
            << " (" << tc.silicon.dimension() << " variation variables)\n";

  // 2. Collect K = 50 expensive post-layout samples (here: VirtualSilicon
  //    stands in for the transistor-level simulator) plus a test set.
  stats::Rng rng(42);
  circuit::Dataset train = tc.silicon.sample_late(50, rng);
  circuit::Dataset test = tc.silicon.sample_late(300, rng);

  // 3. Bayesian model fusion with automatic prior selection (BMF-PS).
  core::FusionResult fused =
      core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs, tc.informative,
                    train.points, train.f);
  std::cout << "BMF chose " << to_string(fused.report.chosen_kind)
            << " prior, tau = " << fused.report.chosen_tau << "\n";

  // 4. Compare against the no-prior baseline (OMP sparse regression) and
  //    the early-stage model used as-is.
  auto omp_model =
      regress::omp_fit(tc.silicon.late_basis(), train.points, train.f);
  basis::PerformanceModel early_model(tc.silicon.late_basis(),
                                      tc.early_coeffs);

  auto err = [&](const basis::PerformanceModel& m) {
    return 100.0 * stats::relative_error(m.predict(test.points), test.f);
  };
  std::cout << "\nRelative error on 300 held-out post-layout samples:\n";
  std::cout << "  early-stage model, unchanged : " << err(early_model)
            << " %\n";
  std::cout << "  OMP on 50 late samples       : " << err(omp_model)
            << " %\n";
  std::cout << "  BMF-PS (early + 50 samples)  : " << err(fused.model)
            << " %\n";
  return 0;
}
