#!/usr/bin/env sh
# Probe whether TCP loopback serving works in this environment. Some
# sandboxes allow UNIX-domain sockets but refuse AF_INET bind/listen even
# on 127.0.0.1 — CI must skip the TCP legs there instead of failing, and
# must not silently "pass" them either, so callers get a tri-state:
#
#   exit 0  TCP loopback works end to end (bind, connect, round trip)
#   exit 1  TCP loopback unavailable: skip TCP coverage
#   exit 2  probe itself is broken (missing binaries): abort CI
#
# Usage: tcp_loopback_available.sh <build-dir>
set -eu

build_dir="${1:?usage: tcp_loopback_available.sh <build-dir>}"
served="$build_dir/bin/bmf_served"
client="$build_dir/bin/bmf_client"
[ -x "$served" ] && [ -x "$client" ] || exit 2

tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# Port 0 = kernel-assigned ephemeral port, announced through a file.
"$served" --tcp 127.0.0.1:0 --tcp-announce "$tmp/endpoint" --quiet \
    2>/dev/null &
pid=$!

i=0
while [ ! -s "$tmp/endpoint" ]; do
  kill -0 "$pid" 2>/dev/null || { pid=""; exit 1; }  # died: no TCP here
  i=$((i + 1))
  [ "$i" -gt 50 ] && exit 1
  sleep 0.1
done

endpoint="$(cat "$tmp/endpoint")"
hostport="${endpoint#tcp:}"
"$client" --tcp "$hostport" --timeout-ms 2000 ping >/dev/null 2>&1 || exit 1
"$client" --tcp "$hostport" --timeout-ms 2000 shutdown >/dev/null 2>&1 || true
wait "$pid" 2>/dev/null || true
pid=""
exit 0
