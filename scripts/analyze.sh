#!/usr/bin/env sh
# Static-analysis gate.
#
# Preferred tool: clang-tidy with the repo's .clang-tidy profile, driven by a
# compile_commands.json (exported by every CMake configure).  On machines
# without clang-tidy (e.g. a gcc-only container) the gate degrades to a GCC
# strict-warning syntax pass over every translation unit so the script is
# still a meaningful, non-vacuous check everywhere.  Either mode exits
# non-zero on any finding.
#
# Usage: analyze.sh [build-dir]
#   build-dir: directory holding compile_commands.json.  Defaults to
#   $BMF_ANALYZE_BUILD_DIR, then the first existing build tree that already
#   exported one (every CMake configure does), then ./build-analyze
#   (configured on demand) — so a developer who has built anything never
#   pays a second configure just to analyze.
set -eu

src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build_dir="${1:-${BMF_ANALYZE_BUILD_DIR:-}}"
if [ -z "$build_dir" ]; then
  for cand in "$src_dir/build" "$src_dir/build-ci-release" \
              "$src_dir/build-analyze"; do
    if [ -f "$cand/compile_commands.json" ]; then
      build_dir="$cand"
      echo "analyze.sh: reusing $cand/compile_commands.json"
      break
    fi
  done
  build_dir="${build_dir:-$src_dir/build-analyze}"
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "analyze.sh: configuring $build_dir for compile_commands.json"
  cmake -S "$src_dir" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "analyze.sh: FAILED to produce compile_commands.json in $build_dir" >&2
  exit 1
fi

# All first-party translation units (tests included: they are contracts on
# the library's behavior and should be held to the same bar).
sources=$(find "$src_dir/src" "$src_dir/tests" -name '*.cpp' | sort)

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== analyze.sh: clang-tidy ($(clang-tidy --version | head -n 1)) =="
  status=0
  for tu in $sources; do
    clang-tidy -p "$build_dir" --quiet "$tu" || status=1
  done
  if [ "$status" -ne 0 ]; then
    echo "analyze.sh: clang-tidy reported findings" >&2
    exit 1
  fi
  echo "analyze.sh: clang-tidy clean"
  exit 0
fi

echo "== analyze.sh: clang-tidy not found; GCC strict-warning fallback =="
# -fsyntax-only keeps this fast (no codegen); the warning set approximates
# the bugprone/performance surface: shadowing, conversions that silently drop
# precision, pointer-alignment casts, missing virtual dtors, unchecked
# switches.  -Werror makes every finding fatal, matching WarningsAsErrors.
gcc_flags="-std=c++20 -fsyntax-only -Werror -Wall -Wextra -Wpedantic \
  -Wshadow -Wundef -Wcast-align -Wpointer-arith -Wnon-virtual-dtor \
  -Woverloaded-virtual -Wdouble-promotion -Wfloat-conversion \
  -Wswitch-enum -Wvla -Wformat=2 \
  -Wlogical-op -Wduplicated-cond -Wduplicated-branches"
includes="-I$src_dir/src -I$src_dir/tests"
# googletest headers for the test TUs: either a FetchContent checkout under
# the build dir or a system install on the default include path.
for d in "$build_dir"/_deps/googletest-src/googletest/include \
         "$build_dir"/_deps/googletest-src/googlemock/include; do
  [ -d "$d" ] && includes="$includes -isystem $d"
done
if printf '#include <gtest/gtest.h>\n' | \
   g++ -std=c++20 -fsyntax-only $includes -x c++ - 2>/dev/null; then
  have_gtest=1
else
  have_gtest=0
  echo "analyze.sh: gtest headers not found; skipping test TUs" >&2
fi

status=0
for tu in $sources; do
  case "$tu" in
    */tests/*)
      [ "$have_gtest" -eq 1 ] || continue ;;
  esac
  # shellcheck disable=SC2086
  if ! g++ $gcc_flags $includes "$tu"; then
    echo "analyze.sh: findings in $tu" >&2
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "analyze.sh: strict-warning pass reported findings" >&2
  exit 1
fi
echo "analyze.sh: strict-warning pass clean"
