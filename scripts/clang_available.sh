#!/usr/bin/env sh
# Probe whether a clang with working Thread Safety Analysis is available.
# The container this repo usually builds in ships only GCC, where the
# sync-layer annotations (src/sync) compile to nothing — so the clang
# -Wthread-safety gate must skip loudly there instead of failing, and
# must not silently "pass" either. Callers get a tri-state:
#
#   exit 0  clang found and its analysis fires (prints the compiler path
#           on stdout — feed it to -DCMAKE_CXX_COMPILER)
#   exit 1  no usable clang: skip the thread-safety stages
#   exit 2  clang exists but the analysis self-test failed: the gate
#           would be vacuous — abort CI rather than fake coverage
#
# The self-test is hermetic: a known-bad TU (guarded field read without
# the lock) must be *rejected* under -Wthread-safety -Werror=thread-safety.
# A clang that accepts it would turn every negative-compile check into a
# false pass, which is worse than having no gate.
set -eu

find_clang() {
  for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
              clang++-16 clang++-15 clang++-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      command -v "$cand"
      return 0
    fi
  done
  return 1
}

cxx="$(find_clang)" || exit 1

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

cat > "$tmp/bad.cpp" <<'EOF'
#include <mutex>
class __attribute__((capability("mutex"))) Mu {
 public:
  void lock() __attribute__((acquire_capability())) { mu_.lock(); }
  void unlock() __attribute__((release_capability())) { mu_.unlock(); }
 private:
  std::mutex mu_;
};
struct S {
  Mu mu;
  int x __attribute__((guarded_by(mu))) = 0;
};
int read_unlocked(S& s) { return s.x; }  // must be rejected
EOF

# Sanity leg: the same TU with the violation fixed must compile, or the
# toolchain (headers, std library) is broken rather than merely absent.
cat > "$tmp/good.cpp" <<'EOF'
#include <mutex>
class __attribute__((capability("mutex"))) Mu {
 public:
  void lock() __attribute__((acquire_capability())) { mu_.lock(); }
  void unlock() __attribute__((release_capability())) { mu_.unlock(); }
 private:
  std::mutex mu_;
};
struct S {
  Mu mu;
  int x __attribute__((guarded_by(mu))) = 0;
};
int read_locked(S& s) {
  s.mu.lock();
  const int v = s.x;
  s.mu.unlock();
  return v;
}
EOF

flags="-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety"

# shellcheck disable=SC2086  # flags is a deliberate word list
if ! "$cxx" $flags "$tmp/good.cpp" >/dev/null 2>&1; then
  exit 1  # clang present but can't compile C++20 here: treat as absent
fi
# shellcheck disable=SC2086
if "$cxx" $flags "$tmp/bad.cpp" >/dev/null 2>&1; then
  echo "clang_available: $cxx accepted a thread-safety violation" >&2
  exit 2  # analysis is vacuous: the gate must not pretend to run
fi

printf '%s\n' "$cxx"
exit 0
