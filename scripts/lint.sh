#!/usr/bin/env sh
# Repo-invariant linter: fast textual checks for rules the compiler cannot
# enforce.  Each rule guards a property the project depends on:
#
#   1. No std::rand/srand/time()-seeding — every random stream must go
#      through stats::Rng with an explicit seed, or results stop being
#      reproducible.
#   2. No raw new/delete — ownership is std::vector / unique_ptr only.
#   3. No float types or literals in the numeric core — kernels are double
#      end to end; a stray float silently halves precision.
#   4. No unordered_map/unordered_set iteration in numeric paths — bucket
#      order varies across libstdc++ versions, breaking bit-identical
#      results.
#   5. Every header is self-contained (compiles standalone), so include
#      order can never hide a missing dependency.
#   6. No raw ::read/::write/::send/::recv/::poll/::fsync/::fdatasync/
#      ::rename outside src/serve/wire.cpp and src/fault — all socket I/O
#      and every durability syscall (the WAL appends and atomic renames of
#      src/store, the crash-atomic model save) must flow through the
#      fault-injection wrappers (fault::sys_*), or the chaos and crash
#      tests silently stop covering it.
#   7. No SIMD intrinsics outside src/linalg/kernels/ — wide code is only
#      legal behind the runtime dispatcher (per-file ISA flags + cpuid
#      gate); an intrinsic anywhere else either SIGILLs on older hosts or
#      forks the FP accumulation order outside the kernel contract.
#   8. No socket-option plumbing (setsockopt/fcntl/epoll_ctl/eventfd)
#      outside src/serve/wire.cpp and src/fault — transport tuning
#      (TCP_NODELAY, SO_REUSEADDR, O_NONBLOCK) lives behind the wire/fault
#      layer so every code path gets the same socket semantics and the
#      chaos suite covers them.
#   9. No raw std::mutex/std::condition_variable/std::lock_guard/... outside
#      src/sync — all locking goes through the annotated sync layer
#      (sync::Mutex & co.), or clang's -Wthread-safety gate silently stops
#      covering it: a raw std::mutex carries no capability, so the analysis
#      has nothing to check and misses every bug behind it.
#
# Usage: lint.sh   (run from anywhere; exits non-zero on any violation)
set -eu

src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
status=0
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT INT TERM

fail() {
  echo "lint.sh: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  status=1
}

# Strip // line comments so prose like "new random variables" cannot trip
# code-pattern rules.  (Block comments in this codebase are single-line.)
strip_comments() {
  sed 's://.*$::' "$1"
}

all_sources=$(find "$src_dir/src" -name '*.cpp' -o -name '*.hpp' | sort)
numeric_sources=$(find "$src_dir/src/linalg" "$src_dir/src/bmf" \
  "$src_dir/src/regress" "$src_dir/src/stats" "$src_dir/src/serve" \
  -name '*.cpp' -o -name '*.hpp' | sort)

# Rule 1: unseeded/global randomness.  `time(` must not match identifiers
# that merely end in "time" (e.g. crossing_time(...)).
for f in $all_sources; do
  hits=$(strip_comments "$f" | grep -nE \
    '(^|[^A-Za-z0-9_:])(std::)?(rand|srand)[[:space:]]*\(|(^|[^A-Za-z0-9_])time[[:space:]]*\(' \
    || true)
  [ -n "$hits" ] && fail "unseeded randomness in $f" "$hits"
done

# Rule 2: raw new/delete (smart pointers and containers own everything).
# `make_unique`/placement-new-free codebase: any `new X` or `delete p` is a
# violation; `new` inside a make_unique call does not appear textually.
for f in $all_sources; do
  hits=$(strip_comments "$f" | grep -nE \
    '(^|[^A-Za-z0-9_])new[[:space:]]+[A-Za-z_][A-Za-z0-9_:<]*|(^|[^A-Za-z0-9_])delete([[:space:]]*\[\])?[[:space:]]+[A-Za-z_]' \
    | grep -vE 'delete[dm]?;|= delete' || true)
  [ -n "$hits" ] && fail "raw new/delete in $f" "$hits"
done

# Rule 3: float types/literals in double kernels.  Hex literals are stripped
# first so 0x...F constants (RNG mixers) cannot masquerade as float suffixes.
for f in $numeric_sources; do
  hits=$(strip_comments "$f" | sed -E 's/0[xX][0-9a-fA-F]+(ULL|ull|UL|ul|U|u|LL|ll|L|l)?//g' \
    | grep -nE '(^|[^A-Za-z0-9_])float([^A-Za-z0-9_]|$)|(^|[^A-Za-z0-9_.])[0-9]+(\.[0-9]*)?([eE][+-]?[0-9]+)?[fF]([^A-Za-z0-9_]|$)' \
    || true)
  [ -n "$hits" ] && fail "float type/literal in numeric core $f" "$hits"
done

# Rule 4: unordered containers in numeric paths (iteration order is not
# deterministic across standard-library implementations).
for f in $numeric_sources; do
  hits=$(strip_comments "$f" | grep -nE 'unordered_(map|set)' || true)
  [ -n "$hits" ] && fail "unordered container in numeric path $f" "$hits"
done

# Rule 5: headers self-contained — each header must compile as its own TU.
for h in $(find "$src_dir/src" -name '*.hpp' | sort); do
  probe="$tmp/probe.cpp"
  printf '#include "%s"\n' "$h" > "$probe"
  if ! g++ -std=c++20 -fsyntax-only -I"$src_dir/src" "$probe" 2>"$tmp/err"; then
    fail "header not self-contained: $h" "$(cat "$tmp/err")"
  fi
done

# Rule 6: raw syscall I/O outside the wire/fault layer.  Everything that
# touches a socket — and every durability syscall (src/store WAL appends,
# snapshot renames, the crash-atomic model save) — must go through
# fault::sys_* so injected faults and crash points cover it.
for f in $all_sources; do
  case "$f" in
    "$src_dir/src/fault/"*|"$src_dir/src/serve/wire.cpp") continue ;;
  esac
  hits=$(strip_comments "$f" | grep -nE \
    '::(read|write|send|recv|poll|fsync|fdatasync|rename)[[:space:]]*\(' || true)
  [ -n "$hits" ] && fail "raw syscall I/O outside wire/fault layer in $f" "$hits"
done

# Rule 7: intrinsics confined to the dispatched kernel layer.  Only the
# per-ISA TUs in src/linalg/kernels/ are compiled with wide-instruction
# flags and guarded by the cpuid dispatcher.
for f in $all_sources; do
  case "$f" in
    "$src_dir/src/linalg/kernels/"*) continue ;;
  esac
  hits=$(strip_comments "$f" | grep -nE \
    'immintrin\.h|__m256|__m512|_mm256_|_mm512_' || true)
  [ -n "$hits" ] && fail "SIMD intrinsics outside src/linalg/kernels in $f" "$hits"
done

# Rule 8: socket-option plumbing confined to the wire/fault layer.  A
# setsockopt/fcntl/epoll_ctl/eventfd call anywhere else forks the socket
# semantics (Nagle, nonblocking mode, event registration) away from the
# one audited implementation.
for f in $all_sources; do
  case "$f" in
    "$src_dir/src/fault/"*|"$src_dir/src/serve/wire.cpp") continue ;;
  esac
  hits=$(strip_comments "$f" | grep -nE \
    '::(setsockopt|fcntl|epoll_ctl|epoll_create1?|eventfd)[[:space:]]*\(' \
    || true)
  [ -n "$hits" ] && fail "socket-option plumbing outside wire/fault layer in $f" "$hits"
done

# Rule 9: raw standard-library synchronization outside the sync layer.
# Only src/sync may name the std:: primitives; everyone else uses the
# annotated wrappers so the thread-safety analysis sees every lock.
for f in $all_sources; do
  case "$f" in
    "$src_dir/src/sync/"*) continue ;;
  esac
  hits=$(strip_comments "$f" | grep -nE \
    'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)([^A-Za-z0-9_]|$)' \
    || true)
  [ -n "$hits" ] && fail "raw std:: synchronization outside src/sync in $f" "$hits"
done

if [ "$status" -ne 0 ]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: all invariants hold"
