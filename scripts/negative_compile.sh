#!/usr/bin/env sh
# Negative-compile harness for the thread-safety gate: proves the gate
# actually *fires*, not merely that clean code passes. Each
# tests/negcompile/bad_*.cpp contains one concurrency bug the sync layer
# (src/sync) must reject at compile time, plus an `// EXPECT-DIAGNOSTIC:`
# line naming a substring clang's diagnostic must contain. A bad TU that
# compiles — or fails with the *wrong* diagnostic (e.g. a typo'd include
# masking the real check) — fails the harness.
#
# good_annotated.cpp is the positive control: same headers, same flags,
# violations fixed. If it doesn't compile, every "bad TU rejected" result
# below is meaningless, so it runs first and aborts on failure.
#
# Usage: negative_compile.sh <clang++> [src-dir]
#   <clang++>  compiler to use — take it from scripts/clang_available.sh
#              so a vacuous analysis (exit 2 there) never reaches here.
set -eu

cxx="${1:?usage: negative_compile.sh <clang++> [src-dir]}"
root="${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
src="$root/src"
neg="$root/tests/negcompile"

flags="-std=c++20 -fsyntax-only -Wall -Wextra \
       -Wthread-safety -Werror=thread-safety -I$src"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT INT TERM

# shellcheck disable=SC2086  # flags is a deliberate word list
if ! "$cxx" $flags "$neg/good_annotated.cpp" 2> "$log"; then
  echo "negative_compile: positive control good_annotated.cpp FAILED:" >&2
  cat "$log" >&2
  exit 1
fi
echo "  ok   good_annotated.cpp (positive control compiles)"

fail=0
for tu in "$neg"/bad_*.cpp; do
  name="$(basename "$tu")"
  expect="$(sed -n 's|^// EXPECT-DIAGNOSTIC: ||p' "$tu" | head -n 1)"
  if [ -z "$expect" ]; then
    echo "  FAIL $name: no // EXPECT-DIAGNOSTIC: line" >&2
    fail=1
    continue
  fi
  # shellcheck disable=SC2086
  if "$cxx" $flags "$tu" 2> "$log"; then
    echo "  FAIL $name: compiled — the gate did not fire" >&2
    fail=1
    continue
  fi
  if ! grep -F -q -- "$expect" "$log"; then
    echo "  FAIL $name: rejected, but diagnostic lacks '$expect':" >&2
    cat "$log" >&2
    fail=1
    continue
  fi
  echo "  ok   $name (rejected: '$expect')"
done

[ "$fail" -eq 0 ] || exit 1
echo "negative_compile: all known-bad TUs rejected with expected diagnostics"
