#!/usr/bin/env sh
# simd_level_available.sh <build-dir> <level> — exit 0 iff this host+build
# can execute BMF_SIMD_LEVEL=<level> (scalar/avx2/avx512), 1 if the level
# is unavailable, 2 on probe failure.
#
# The dispatcher never hard-fails on an unavailable BMF_SIMD_LEVEL — it
# warns on stderr and falls back — so a test matrix that just set the
# variable would silently re-run the fallback level and report green.
# This probe pins the level, forces dispatch resolution (the gtest filter
# below calls dispatch_info()), and reports whether the request was
# honored or ignored.
set -eu

build_dir="$1"
level="$2"
probe="$build_dir/tests/simd_kernels_test"
if [ ! -x "$probe" ]; then
  echo "simd_level_available.sh: $probe not found" >&2
  exit 2
fi

if ! out=$(BMF_SIMD_LEVEL="$level" "$probe" \
             --gtest_filter=SimdKernels.DispatchInfoSelfConsistent 2>&1); then
  echo "$out" >&2
  exit 2
fi
case "$out" in
  *"unknown or unavailable"*) exit 1 ;;
esac
exit 0
