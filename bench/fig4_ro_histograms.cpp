// Reproduces Fig. 4: histograms of 3000 post-layout Monte Carlo simulation
// samples for (a) power, (b) phase noise and (c) frequency of the ring
// oscillator. Rendered as ASCII bars; optionally dumped to CSV with
// --csv <prefix> for external plotting.
#include <iostream>

#include "experiment.hpp"
#include "io/csv.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(
      args, circuit::kRoDefaultVars, circuit::kRoFullVars, 1);
  const std::size_t n =
      static_cast<std::size_t>(args.get_int("samples", 3000));
  const std::size_t bins = static_cast<std::size_t>(args.get_int("bins", 25));
  const std::string csv_prefix = args.get("csv");

  std::cout << "[Fig 4] Histograms of " << n
            << " post-layout MC samples, ring oscillator (variables="
            << scale.vars << ")\n";

  for (auto metric : {circuit::RoMetric::kPower, circuit::RoMetric::kPhaseNoise,
                      circuit::RoMetric::kFrequency}) {
    circuit::Testcase tc = circuit::ring_oscillator_testcase(
        metric, scale.vars, scale.seed, circuit::EarlyModelSource::kTruth);
    stats::Rng rng(scale.seed + 100 + static_cast<std::uint64_t>(metric));
    circuit::Dataset d = tc.silicon.sample_late(n, rng);
    std::vector<double> values(d.f.begin(), d.f.end());
    stats::Summary s = stats::summarize(values);
    std::cout << "\n--- " << tc.metric << " [" << tc.unit << "]"
              << "  mean=" << s.mean << "  sd=" << s.stddev << " ---\n";
    stats::Histogram h = stats::make_histogram(values, bins);
    std::cout << stats::render_histogram(h);
    if (!csv_prefix.empty()) {
      linalg::Vector centers(h.counts.size()), counts(h.counts.size());
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        centers[b] = h.bin_center(b);
        counts[b] = static_cast<double>(h.counts[b]);
      }
      io::write_csv_columns(csv_prefix + "_" + tc.metric + ".csv",
                            {"bin_center", "count"}, {centers, counts});
    }
  }
  return 0;
}
