#!/usr/bin/env sh
# Machine-readable perf trajectory for the MAP solvers.
#
# Runs the google-benchmark solver-scaling ablation with JSON output so
# successive PRs can diff wall-clock numbers. Usage:
#
#   bench/run_bench.sh [build-dir] [extra google-benchmark args...]
#
# Writes <build-dir>/BENCH_solver.json (default build dir: ./build).
# Thread count is controlled by BMF_NUM_THREADS (default: all cores).
set -eu

build_dir="${1:-build}"
[ $# -gt 0 ] && shift

bin="$build_dir/bench/ablation_solver_scaling"
if [ ! -x "$bin" ]; then
  echo "error: $bin not found — build first: cmake --build $build_dir -j" >&2
  exit 1
fi

out="$build_dir/BENCH_solver.json"
"$bin" --benchmark_format=json --benchmark_out="$out" \
       --benchmark_out_format=json "$@"
echo "wrote $out (BMF_NUM_THREADS=${BMF_NUM_THREADS:-auto})"
