#!/usr/bin/env sh
# Machine-readable perf trajectory for the MAP solvers and the serving
# daemon.
#
# Configures + builds the benchmarks in Release mode, verifies the resolved
# build type (benchmarking a Debug build silently produces garbage numbers),
# then runs the solver-scaling ablation, the basis-evaluation throughput
# bench, and the serving throughput bench with JSON output so successive
# PRs can diff wall-clock numbers. After each microbench run the produced
# JSON is checked for "library_build_type": "release" — the harness
# (bench/microbench) reports its own compiled build type, so a debug-built
# harness can never slip its numbers into the record. Usage:
#
#   bench/run_bench.sh [build-dir] [extra benchmark args...]
#
# Writes <build-dir>/BENCH_solver.json, <build-dir>/BENCH_basis.json and
# <build-dir>/BENCH_serve.json (default build dir: ./build). Extra
# arguments apply to the solver bench only. Thread count is controlled by
# BMF_NUM_THREADS (default: all cores).
set -eu

src_dir="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
build_dir="${1:-build}"
[ $# -gt 0 ] && shift

# Refuse to touch a build dir already configured as something other than
# Release (passing -DCMAKE_BUILD_TYPE=Release would silently flip the
# cache and rebuild the user's Debug tree as Release).
cache="$build_dir/CMakeCache.txt"
if [ -f "$cache" ]; then
  existing="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache")"
  if [ "$existing" != "Release" ]; then
    echo "error: $build_dir is configured as '${existing:-<empty>}', not Release." >&2
    echo "Refusing to benchmark a non-optimized build; use a fresh build dir." >&2
    exit 1
  fi
fi

# Configure (or re-configure) pinning the build type, then verify what the
# cache actually resolved to.
cmake -S "$src_dir" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release >/dev/null
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache")"
if [ "$build_type" != "Release" ]; then
  echo "error: $build_dir resolved CMAKE_BUILD_TYPE='${build_type:-<empty>}'," >&2
  echo "expected Release. Refusing to benchmark a non-optimized build." >&2
  exit 1
fi

cmake --build "$build_dir" -j --target ablation_solver_scaling \
      basis_throughput serve_throughput >/dev/null

# The microbench harness records the build type it was itself compiled
# with; refuse to keep numbers from anything but a release harness.
require_release_harness() {
  if ! grep -q '"library_build_type": "release"' "$1"; then
    echo "error: $1 was produced by a non-release benchmark harness" >&2
    echo "(expected \"library_build_type\": \"release\" in its context)." >&2
    exit 1
  fi
}

bin="$build_dir/bench/ablation_solver_scaling"
if [ ! -x "$bin" ]; then
  echo "error: $bin not found after build" >&2
  exit 1
fi

out="$build_dir/BENCH_solver.json"
"$bin" --benchmark_format=json --benchmark_out="$out" \
       --benchmark_out_format=json \
       --benchmark_context=bmf_build_type="$build_type" "$@"
require_release_harness "$out"
echo "wrote $out (CMAKE_BUILD_TYPE=$build_type, BMF_NUM_THREADS=${BMF_NUM_THREADS:-auto})"

basis_bin="$build_dir/bench/basis_throughput"
if [ ! -x "$basis_bin" ]; then
  echo "error: $basis_bin not found after build" >&2
  exit 1
fi
basis_out="$build_dir/BENCH_basis.json"
"$basis_bin" --benchmark_format=json --benchmark_out="$basis_out" \
             --benchmark_out_format=json \
             --benchmark_context=bmf_build_type="$build_type"
require_release_harness "$basis_out"
echo "wrote $basis_out"

serve_bin="$build_dir/bench/serve_throughput"
if [ ! -x "$serve_bin" ]; then
  echo "error: $serve_bin not found after build" >&2
  exit 1
fi
"$serve_bin" --router --out "$build_dir/BENCH_serve.json"
