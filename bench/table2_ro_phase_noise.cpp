// Reproduces Table II: relative modeling error (%) of phase noise for the
// ring oscillator vs the number of post-layout training samples.
#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  return bench::run_error_table_bench(
      argc, argv, "[Table II] RO phase noise", circuit::kRoDefaultVars,
      circuit::kRoFullVars, [](std::size_t vars, std::uint64_t seed) {
        return circuit::ring_oscillator_testcase(
            circuit::RoMetric::kPhaseNoise, vars, seed);
      });
}
