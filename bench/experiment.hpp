// Shared experiment harness for the paper-reproduction benches.
//
// Implements the Section V protocol: for each repeated run, draw a fresh
// post-layout training set (900 samples max) and a 300-sample testing set,
// then for every training-set size K fit the four methods — OMP, BMF-ZM,
// BMF-NZM, BMF-PS — and record the relative modeling error (Eq. 59) on the
// testing set. Errors are averaged over repeats, exactly like the paper's
// Tables I-III and V.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/testcases.hpp"
#include "io/args.hpp"

namespace bmf::bench {

/// Names the four compared methods, in the paper's column order.
enum class Method { kOmp, kBmfZm, kBmfNzm, kBmfPs };
inline constexpr std::size_t kNumMethods = 4;
const char* method_name(Method m);

struct SweepConfig {
  /// Training-set sizes (paper: 100..900 step 100).
  std::vector<std::size_t> sample_sizes = {100, 200, 300, 400, 500,
                                           600, 700, 800, 900};
  /// Independent repeats with fresh training/testing sets (paper: 50).
  std::size_t repeats = 5;
  /// Testing-set size (paper: 300).
  std::size_t test_size = 300;
  std::uint64_t seed = 2013;
};

struct SweepResult {
  std::vector<std::size_t> sample_sizes;
  /// errors[method][k_index]: mean relative error over repeats.
  double errors[kNumMethods][16] = {};
  /// Mean wall-clock *solve-only* seconds per (method, K) — Monte Carlo
  /// sampling and design-matrix assembly are reported separately below so
  /// that per-phase speedups stay attributable.
  double fit_seconds[kNumMethods][16] = {};
  /// Mean per-repeat wall-clock of the shared phases: drawing the training
  /// + testing Monte Carlo sets, and assembling their design matrices.
  double sample_seconds = 0.0;
  double design_seconds = 0.0;
};

/// Run the full error sweep on one testcase.
SweepResult run_error_sweep(const circuit::Testcase& testcase,
                            const SweepConfig& config);

/// Print a paper-style error table (relative error in percent).
std::string format_error_table(const SweepResult& result);

/// Print the fitting-cost series (seconds vs K) for the given methods.
std::string format_cost_table(const SweepResult& result,
                              const std::vector<Method>& methods);

/// One-line per-phase wall-clock summary (sampling vs design-matrix
/// assembly vs solve) for a sweep result.
std::string format_phase_timing(const SweepResult& result);

/// Single-point comparison used by Tables IV and VI: OMP at k_omp samples
/// vs BMF-PS (fast solver) at k_bmf samples.
struct CostComparison {
  double omp_error = 0.0, bmf_error = 0.0;
  double omp_fit_seconds = 0.0, bmf_fit_seconds = 0.0;
  double omp_sim_hours = 0.0, bmf_sim_hours = 0.0;

  double omp_total_hours() const {
    return omp_sim_hours + omp_fit_seconds / 3600.0;
  }
  double bmf_total_hours() const {
    return bmf_sim_hours + bmf_fit_seconds / 3600.0;
  }
  double speedup() const { return omp_total_hours() / bmf_total_hours(); }
};

CostComparison run_cost_comparison(const circuit::Testcase& testcase,
                                   std::size_t k_omp, std::size_t k_bmf,
                                   std::size_t repeats, std::uint64_t seed);

/// Standard bench CLI: --vars N --repeats N --seed S --full --test N.
/// `default_vars`/`full_vars` pick the scale.
struct BenchScale {
  std::size_t vars;
  std::size_t repeats;
  std::uint64_t seed;
};
BenchScale parse_scale(const io::Args& args, std::size_t default_vars,
                       std::size_t full_vars, std::size_t default_repeats);

/// Monotonic wall-clock seconds.
double now_seconds();

}  // namespace bmf::bench
