// Ablation: multifinger prior mapping (Section IV-A). For finger counts
// T in {1, 2, 4, 8}, compares the paper's variance-preserving
// beta = alpha/sqrt(T) mapping against (a) naively copying alpha to every
// finger and (b) using no prior at all. The late-stage truth follows the
// physical scaling, so the sqrt(T) rule should dominate.
#include <cmath>
#include <iostream>

#include "bmf/fusion.hpp"
#include "experiment.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"
#include "regress/omp.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const std::size_t r_early =
      static_cast<std::size_t>(args.get_int("vars", 60));
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 40));
  const std::size_t repeats =
      static_cast<std::size_t>(args.get_int("repeats", 5));
  const std::uint64_t seed = args.get_seed("seed", 21);

  std::cout << "[Ablation] Prior mapping for multifinger devices ("
            << r_early << " early variables, K=" << k
            << ", repeats=" << repeats << ")\n\n";

  io::Table table({"fingers T", "alpha/sqrt(T) (%)", "naive copy (%)",
                   "no prior / OMP (%)"});
  stats::Rng master(seed);
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    double err_mapped = 0, err_naive = 0, err_omp = 0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      stats::Rng rng = master.split();
      // Early model: random linear coefficients.
      linalg::Vector alpha(r_early + 1, 0.0);
      for (std::size_t m = 1; m <= r_early; ++m)
        alpha[m] = rng.normal() / std::sqrt(static_cast<double>(m));
      basis::PerformanceModel early(basis::BasisSet::linear(r_early), alpha);

      core::MultifingerMap map(std::vector<unsigned>(r_early, t));
      core::MappedPrior mapped = map.map_linear_model(early);

      // Late truth: the physically-scaled finger coefficients plus drift.
      linalg::Vector truth = mapped.early_coeffs;
      for (std::size_t m = 1; m < truth.size(); ++m)
        truth[m] *= 1.0 + 0.05 * rng.normal();

      const std::size_t r_late = map.num_late_vars();
      auto sample = [&](std::size_t n, linalg::Matrix& pts,
                        linalg::Vector& f) {
        pts.assign(n, r_late);
        f.assign(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          f[i] = truth[0];
          for (std::size_t v = 0; v < r_late; ++v) {
            const double x = rng.normal();
            pts(i, v) = x;
            f[i] += truth[1 + v] * x;
          }
          f[i] += rng.normal(0.0, 0.02);
        }
      };
      linalg::Matrix xtr, xte;
      linalg::Vector ftr, fte;
      sample(k, xtr, ftr);
      sample(300, xte, fte);
      auto err = [&](const basis::PerformanceModel& m) {
        return stats::relative_error(m.predict(xte), fte);
      };

      core::BmfFitter good(mapped);
      good.set_data(xtr, ftr);
      err_mapped += err(good.fit().model);

      // Naive copy: every finger inherits the full alpha.
      core::MappedPrior naive = mapped;
      for (std::size_t m = 1; m < naive.early_coeffs.size(); ++m)
        naive.early_coeffs[m] *= std::sqrt(static_cast<double>(t));
      core::BmfFitter bad(naive);
      bad.set_data(xtr, ftr);
      err_naive += err(bad.fit().model);

      err_omp += err(regress::omp_fit(mapped.late_basis, xtr, ftr));
    }
    const double inv = 100.0 / static_cast<double>(repeats);
    table.add_row({std::to_string(t), io::Table::num(err_mapped * inv),
                   io::Table::num(err_naive * inv),
                   io::Table::num(err_omp * inv)});
  }
  std::cout << table;
  std::cout << "\nAt T = 1 all mappings coincide; for T > 1 the naive copy "
               "overstates every prior width/mean by sqrt(T) and degrades, "
               "while alpha/sqrt(T) (Eq. 49) stays accurate.\n";
  return 0;
}
