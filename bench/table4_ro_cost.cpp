// Reproduces Table IV: modeling error and cost comparison for the ring
// oscillator — OMP with 900 post-layout training samples vs BMF-PS (fast
// solver) with 100 samples, for all three metrics. The simulation cost is
// extrapolated from the paper's calibration (50.3 s per post-layout SPICE
// sample); the fitting cost is measured on this machine. The headline
// number to match is the ~9x total-cost speedup at equal-or-better error.
#include <iostream>

#include "experiment.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(
      args, circuit::kRoDefaultVars, circuit::kRoFullVars,
      /*default_repeats=*/3);
  const std::size_t k_omp = 900, k_bmf = 100;

  std::cout << "[Table IV] RO error and modeling cost: OMP@" << k_omp
            << " vs BMF-PS(fast)@" << k_bmf << "\n";
  std::cout << "variables=" << scale.vars << " repeats=" << scale.repeats
            << " seed=" << scale.seed << "\n\n";

  io::Table table({"Quantity", "OMP", "BMF-PS (fast solver)"});
  table.add_row({"# of post-layout training samples", std::to_string(k_omp),
                 std::to_string(k_bmf)});

  double omp_fit_s = 0.0, bmf_fit_s = 0.0;
  double omp_sim_h = 0.0, bmf_sim_h = 0.0;
  for (auto metric : {circuit::RoMetric::kPower, circuit::RoMetric::kPhaseNoise,
                      circuit::RoMetric::kFrequency}) {
    circuit::Testcase tc =
        circuit::ring_oscillator_testcase(metric, scale.vars, scale.seed);
    bench::CostComparison cmp = bench::run_cost_comparison(
        tc, k_omp, k_bmf, scale.repeats, scale.seed);
    table.add_row({std::string("Modeling error for ") + tc.metric,
                   io::Table::num(100.0 * cmp.omp_error) + "%",
                   io::Table::num(100.0 * cmp.bmf_error) + "%"});
    omp_fit_s += cmp.omp_fit_seconds;
    bmf_fit_s += cmp.bmf_fit_seconds;
    omp_sim_h = cmp.omp_sim_hours;  // same per metric (same sample count)
    bmf_sim_h = cmp.bmf_sim_hours;
  }
  table.add_row({"Simulation cost (Hour, extrapolated)",
                 io::Table::num(omp_sim_h, 2), io::Table::num(bmf_sim_h, 2)});
  table.add_row({"Fitting cost (Second, measured, 3 metrics)",
                 io::Table::num(omp_fit_s, 2), io::Table::num(bmf_fit_s, 2)});
  const double omp_total = omp_sim_h + omp_fit_s / 3600.0;
  const double bmf_total = bmf_sim_h + bmf_fit_s / 3600.0;
  table.add_row({"Total modeling cost (Hour)", io::Table::num(omp_total, 2),
                 io::Table::num(bmf_total, 2)});
  std::cout << table;
  std::cout << "\nTotal-cost speedup of BMF-PS over OMP: "
            << io::Table::num(omp_total / bmf_total, 2) << "x (paper: 9x)\n";
  return 0;
}
