// Reproduces Table V: relative modeling error (%) of read delay for the
// SRAM read path vs the number of post-layout training samples. Signature
// to match: BMF-NZM loses to BMF-ZM at 100 samples but wins at larger K.
#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  return bench::run_error_table_bench(
      argc, argv, "[Table V] SRAM read delay", circuit::kSramDefaultVars,
      circuit::kSramFullVars, [](std::size_t vars, std::uint64_t seed) {
        return circuit::sram_read_path_testcase(vars, seed);
      });
}
