// Basis-evaluation throughput: the per-request cost the serving daemon
// pays. Measures design-matrix expansion (materialized) and the fused
// design-matrix-times-coefficients pass the BatchEvaluator runs, at the
// serving benchmark's shape (K = 4096 points, d = 24 variables), for both
// the linear and the linear+diagonal-quadratic basis, plus the raw
// lane-parallel Hermite recurrence sweep. Reports rows (points) per
// second via items_per_second; the active SIMD dispatch level is recorded
// in the JSON context.
//
// Usage: basis_throughput [--benchmark_out=BENCH_basis.json
//                          --benchmark_out_format=json ...]
#include <benchmark/benchmark.h>

#include <vector>

#include "basis/basis_set.hpp"
#include "basis/hermite.hpp"
#include "linalg/kernels/kernels.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmf;

constexpr std::size_t kRows = 4096;
constexpr std::size_t kDim = 24;

linalg::Matrix make_points(std::uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Matrix p(kRows, kDim);
  for (std::size_t i = 0; i < p.size(); ++i) p.data()[i] = rng.normal();
  return p;
}

basis::BasisSet make_basis(std::int64_t degree) {
  return degree <= 1 ? basis::BasisSet::linear(kDim)
                     : basis::BasisSet::linear_plus_diagonal_quadratic(kDim);
}

void BM_DesignMatrix(benchmark::State& state) {
  const auto basis = make_basis(state.range(0));
  const auto points = make_points(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(basis::design_matrix(basis, points));
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(kRows));
}

void BM_DesignMatrixTimes(benchmark::State& state) {
  const auto basis = make_basis(state.range(0));
  const auto points = make_points(7);
  stats::Rng rng(11);
  linalg::Vector coeffs(basis.size());
  for (double& c : coeffs) c = rng.normal();
  linalg::Vector out;
  for (auto _ : state) {
    basis::design_matrix_times(basis, points, coeffs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(kRows));
}

void BM_HermiteBatch(benchmark::State& state) {
  const unsigned max_degree = static_cast<unsigned>(state.range(0));
  stats::Rng rng(13);
  std::vector<double> x(kRows);
  for (double& v : x) v = rng.normal();
  std::vector<double> out((max_degree + 1) * kRows);
  for (auto _ : state) {
    basis::hermite_orthonormal_batch(max_degree, x.data(), kRows, out.data(),
                                     kRows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(kRows));
}

BENCHMARK(BM_DesignMatrix)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();
BENCHMARK(BM_DesignMatrixTimes)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();
BENCHMARK(BM_HermiteBatch)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd_level", linalg::kernels::level_name(
                        linalg::kernels::dispatch_info().active));
  return benchmark::RunAll(argc, argv);
}
