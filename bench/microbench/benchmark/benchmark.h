// In-repo microbenchmark core, API-compatible with the subset of
// google-benchmark this repo uses (State, DoNotOptimize, BENCHMARK()->
// Arg()->Unit()->Complexity(), BENCHMARK_MAIN, JSON/console reporters,
// --benchmark_min_time / --benchmark_out / --benchmark_context flags).
//
// Why not the system libbenchmark: the distro ships it compiled without
// NDEBUG, which it advertises as "library_build_type": "debug" in every
// JSON report — and a debug-built measurement harness taints every number
// it produces. The library has no sources in the image and the toolchain
// has no network, so it cannot be rebuilt; this header replaces it. The
// harness is compiled into the benchmark binary itself, so it always has
// the binary's own build type, which it reports honestly: NDEBUG builds
// report "release", anything else reports "debug" and bench/run_bench.sh
// refuses to record the numbers.
//
// Measurement model (same shape as google-benchmark's): each benchmark is
// re-run with a growing iteration count until one timed run lasts at least
// min_time seconds (default 0.5, override --benchmark_min_time=S); the
// last run's per-iteration real/CPU time is reported. Complexity() is
// accepted for API compatibility; Big-O fitting rows are not emitted.
#pragma once

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

namespace benchmark {

using IterationCount = std::int64_t;

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

class State {
 public:
  State(std::vector<std::int64_t> ranges, IterationCount max_iterations)
      : ranges_(std::move(ranges)), max_iterations_(max_iterations) {}

  std::int64_t range(std::size_t i = 0) const {
    return i < ranges_.size() ? ranges_[i] : 0;
  }

  void SetComplexityN(IterationCount n) { complexity_n_ = n; }
  void SetItemsProcessed(IterationCount n) { items_processed_ = n; }
  void SkipWithError(const char* message) {
    skipped_ = true;
    error_ = message != nullptr ? message : "";
  }

  bool KeepRunning() {
    if (finished_) return false;
    if (!started_) {
      started_ = true;
      iterations_done_ = 0;
      real_start_ = std::chrono::steady_clock::now();
      cpu_start_s_ = cpu_now_seconds();
    }
    if (iterations_done_ < max_iterations_ && !skipped_) {
      ++iterations_done_;
      return true;
    }
    real_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - real_start_)
                        .count();
    cpu_seconds_ = cpu_now_seconds() - cpu_start_s_;
    finished_ = true;
    return false;
  }

  // Range-for support: `for (auto _ : state)` drives KeepRunning exactly
  // like google-benchmark's StateIterator.
  class Iterator {
   public:
    explicit Iterator(State* state) : state_(state) {}
    bool operator!=(const Iterator&) const {
      return state_ != nullptr && state_->KeepRunning();
    }
    Iterator& operator++() { return *this; }
    // unused attribute: range-for binds the value to an ignored
    // variable ("for (auto _ : state)"); keep -Wall builds clean.
    struct __attribute__((unused)) Value {};
    Value operator*() const { return {}; }

   private:
    State* state_;
  };
  Iterator begin() { return Iterator(this); }
  Iterator end() { return Iterator(nullptr); }

  IterationCount iterations() const { return iterations_done_; }
  IterationCount max_iterations() const { return max_iterations_; }
  double real_seconds() const { return real_seconds_; }
  double cpu_seconds() const { return cpu_seconds_; }
  IterationCount items_processed() const { return items_processed_; }
  bool skipped() const { return skipped_; }
  const std::string& error() const { return error_; }

 private:
  static double cpu_now_seconds() {
    struct timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  std::vector<std::int64_t> ranges_;
  IterationCount max_iterations_ = 0;
  IterationCount iterations_done_ = 0;
  IterationCount complexity_n_ = 0;
  IterationCount items_processed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool skipped_ = false;
  std::string error_;
  std::chrono::steady_clock::time_point real_start_{};
  double cpu_start_s_ = 0.0;
  double real_seconds_ = 0.0;
  double cpu_seconds_ = 0.0;
};

namespace internal {

struct Family {
  std::string name;
  void (*fn)(State&) = nullptr;
  std::vector<std::vector<std::int64_t>> arg_sets;  // one run per set
  TimeUnit unit = kNanosecond;
};

inline std::vector<std::unique_ptr<Family>>& registry() {
  static std::vector<std::unique_ptr<Family>> families;
  return families;
}

inline std::vector<std::pair<std::string, std::string>>& custom_context() {
  static std::vector<std::pair<std::string, std::string>> entries;
  return entries;
}

struct RunResult {
  std::string name;
  IterationCount iterations = 0;
  double real_per_iter_s = 0.0;
  double cpu_per_iter_s = 0.0;
  double items_per_second = 0.0;
  TimeUnit unit = kNanosecond;
  bool skipped = false;
  std::string error;
};

inline const char* unit_string(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

inline double unit_scale(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1e9;
}

}  // namespace internal

/// Builder returned by BENCHMARK(); each Arg() queues one run.
class Benchmark {
 public:
  explicit Benchmark(internal::Family* family) : family_(family) {}

  Benchmark* Arg(std::int64_t a) {
    family_->arg_sets.push_back({a});
    return this;
  }
  Benchmark* Args(std::vector<std::int64_t> args) {
    family_->arg_sets.push_back(std::move(args));
    return this;
  }
  Benchmark* Unit(TimeUnit unit) {
    family_->unit = unit;
    return this;
  }
  /// Accepted for google-benchmark compatibility; this harness does not
  /// emit Big-O fit rows.
  Benchmark* Complexity() { return this; }

 private:
  internal::Family* family_;
};

/// Registers `fn` and returns a builder for chaining. The builders live in
/// a static pool so the pointers BENCHMARK() stores stay valid for the
/// whole program.
inline Benchmark* RegisterBenchmark(const char* name, void (*fn)(State&)) {
  internal::registry().push_back(std::make_unique<internal::Family>());
  internal::Family* family = internal::registry().back().get();
  family->name = name;
  family->fn = fn;
  static std::vector<std::unique_ptr<Benchmark>> builders;
  builders.push_back(std::make_unique<Benchmark>(family));
  return builders.back().get();
}

/// Extra key/value recorded in the report context (also settable with
/// --benchmark_context=key=value).
inline void AddCustomContext(const std::string& key,
                             const std::string& value) {
  internal::custom_context().emplace_back(key, value);
}

namespace internal {

inline RunResult run_one(const Family& family,
                         const std::vector<std::int64_t>& args,
                         double min_time_s) {
  std::string name = family.name;
  for (std::int64_t a : args) {
    name += '/';
    name += std::to_string(a);
  }

  IterationCount iters = 1;
  for (;;) {
    State state(args, iters);
    family.fn(state);
    while (state.KeepRunning()) {
      // Drain benchmarks that return without iterating (defensive; a
      // normal benchmark body consumes every iteration itself).
    }
    RunResult result;
    result.name = name;
    result.unit = family.unit;
    result.skipped = state.skipped();
    result.error = state.error();
    const double real_s = state.real_seconds();
    if (result.skipped || real_s >= min_time_s ||
        iters >= IterationCount{1} << 40) {
      result.iterations = iters;
      result.real_per_iter_s = real_s / static_cast<double>(iters);
      result.cpu_per_iter_s =
          state.cpu_seconds() / static_cast<double>(iters);
      if (state.items_processed() > 0 && real_s > 0.0)
        result.items_per_second =
            static_cast<double>(state.items_processed()) *
            static_cast<double>(iters) / real_s;
      return result;
    }
    // Grow toward min_time with headroom, capped at 10x per attempt.
    IterationCount next;
    if (real_s <= 1e-9) {
      next = iters * 10;
    } else {
      const double scaled =
          static_cast<double>(iters) * 1.4 * min_time_s / real_s;
      next = static_cast<IterationCount>(scaled) + 1;
      next = std::min(next, iters * 10);
    }
    iters = std::max(next, iters + 1);
  }
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

inline const char* library_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

inline void report_json(std::FILE* out, const char* executable,
                        const std::vector<RunResult>& results) {
  std::fprintf(out, "{\n  \"context\": {\n");
  {
    char date[64] = "";
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    struct tm tm_buf;
    if (localtime_r(&now, &tm_buf) != nullptr)
      std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm_buf);
    std::fprintf(out, "    \"date\": \"%s\",\n", date);
  }
  std::fprintf(out, "    \"executable\": \"%s\",\n",
               json_escape(executable).c_str());
  std::fprintf(out, "    \"num_cpus\": %ld,\n",
               sysconf(_SC_NPROCESSORS_ONLN));
  for (const auto& [key, value] : custom_context())
    std::fprintf(out, "    \"%s\": \"%s\",\n", json_escape(key).c_str(),
                 json_escape(value).c_str());
  std::fprintf(out, "    \"library_build_type\": \"%s\"\n  },\n",
               library_build_type());
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const double scale = unit_scale(r.unit);
    std::fprintf(out,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"repetitions\": 1,\n"
                 "      \"threads\": 1,\n",
                 json_escape(r.name).c_str(), json_escape(r.name).c_str());
    if (r.skipped)
      std::fprintf(out, "      \"error_occurred\": true,\n"
                        "      \"error_message\": \"%s\",\n",
                   json_escape(r.error).c_str());
    if (r.items_per_second > 0.0)
      std::fprintf(out, "      \"items_per_second\": %.6g,\n",
                   r.items_per_second);
    std::fprintf(out,
                 "      \"iterations\": %" PRId64 ",\n"
                 "      \"real_time\": %.6g,\n"
                 "      \"cpu_time\": %.6g,\n"
                 "      \"time_unit\": \"%s\"\n    }%s\n",
                 r.iterations, r.real_per_iter_s * scale,
                 r.cpu_per_iter_s * scale, unit_string(r.unit),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

inline void report_console(std::FILE* out,
                           const std::vector<RunResult>& results) {
  std::size_t width = 10;
  for (const RunResult& r : results) width = std::max(width, r.name.size());
  const int w = static_cast<int>(width);
  std::fprintf(out, "%-*s %15s %15s %12s\n", w, "Benchmark", "Time", "CPU",
               "Iterations");
  for (std::size_t i = 0; i < width + 46; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const RunResult& r : results) {
    if (r.skipped) {
      std::fprintf(out, "%-*s SKIPPED: %s\n", w, r.name.c_str(),
                   r.error.c_str());
      continue;
    }
    const double scale = unit_scale(r.unit);
    std::fprintf(out, "%-*s %12.3g %s %12.3g %s %12" PRId64, w,
                 r.name.c_str(), r.real_per_iter_s * scale, unit_string(r.unit),
                 r.cpu_per_iter_s * scale, unit_string(r.unit), r.iterations);
    if (r.items_per_second > 0.0)
      std::fprintf(out, "  items/s=%.4g", r.items_per_second);
    std::fputc('\n', out);
  }
}

inline int run_all(int argc, char** argv) {
  double min_time_s = 0.5;
  std::string format = "console";
  std::string out_path;
  std::string out_format = "json";
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--benchmark_min_time=")) {
      // Accept both the plain-seconds form ("0.01") and the newer
      // google-benchmark suffix form ("0.01s"); iteration-count pinning
      // ("10x") is not supported.
      min_time_s = std::strtod(v, nullptr);
      if (!(min_time_s > 0.0)) min_time_s = 0.5;
    } else if (const char* v2 = value_of("--benchmark_format=")) {
      format = v2;
    } else if (const char* v3 = value_of("--benchmark_out=")) {
      out_path = v3;
    } else if (const char* v4 = value_of("--benchmark_out_format=")) {
      out_format = v4;
    } else if (const char* v5 = value_of("--benchmark_filter=")) {
      filter = v5;
    } else if (const char* v6 = value_of("--benchmark_context=")) {
      const std::string entry = v6;
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "benchmark: ignoring malformed %s\n",
                     arg.c_str());
      } else {
        AddCustomContext(entry.substr(0, eq), entry.substr(eq + 1));
      }
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      std::fprintf(stderr, "benchmark: ignoring unsupported flag %s\n",
                   arg.c_str());
    } else {
      std::fprintf(stderr, "benchmark: ignoring argument %s\n", arg.c_str());
      return 1;
    }
  }

  std::vector<RunResult> results;
  for (const auto& family : registry()) {
    auto arg_sets = family->arg_sets;
    if (arg_sets.empty()) arg_sets.push_back({});
    for (const auto& args : arg_sets) {
      std::string name = family->name;
      for (std::int64_t a : args) {
        name += '/';
        name += std::to_string(a);
      }
      // Substring filter (the common use); full regex is not supported.
      if (!filter.empty() && name.find(filter) == std::string::npos)
        continue;
      results.push_back(run_one(*family, args, min_time_s));
      // Progress to stderr so long runs are observable even with
      // --benchmark_format=json on stdout.
      const RunResult& r = results.back();
      std::fprintf(stderr, "%s: %.3g %s (%" PRId64 " iters)\n",
                   r.name.c_str(), r.real_per_iter_s * unit_scale(r.unit),
                   unit_string(r.unit), r.iterations);
    }
  }

  if (format == "json")
    report_json(stdout, argv[0], results);
  else
    report_console(stdout, results);
  if (!out_path.empty()) {
    if (out_format != "json") {
      std::fprintf(stderr, "benchmark: unsupported out_format '%s'\n",
                   out_format.c_str());
      return 1;
    }
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "benchmark: cannot write %s\n", out_path.c_str());
      return 1;
    }
    report_json(f, argv[0], results);
    std::fclose(f);
  }
  for (const RunResult& r : results)
    if (r.skipped) return 1;
  return 0;
}

}  // namespace internal

/// BENCHMARK_MAIN() body; custom mains can call this after seeding
/// AddCustomContext entries.
inline int RunAll(int argc, char** argv) {
  return internal::run_all(argc, argv);
}

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT2(a, b) a##b
#define BENCHMARK_PRIVATE_CONCAT(a, b) BENCHMARK_PRIVATE_CONCAT2(a, b)
#define BENCHMARK(fn)                                   \
  static ::benchmark::Benchmark* BENCHMARK_PRIVATE_CONCAT(bm_reg_, fn) = \
      ::benchmark::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                             \
  int main(int argc, char** argv) {                  \
    return ::benchmark::RunAll(argc, argv);          \
  }
