// Ablation: the nonlinear extension the paper sketches at the end of
// Section V — BMF over an order-2 orthonormal basis (linear plus diagonal
// quadratic Hermite terms). The ground truth carries genuine curvature, so
// a linear model saturates at the curvature-induced error floor while the
// quadratic BMF model fuses through it.
#include <cmath>
#include <iostream>

#include "bmf/fusion.hpp"
#include "experiment.hpp"
#include "io/table.hpp"
#include "regress/omp.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const std::size_t r = static_cast<std::size_t>(args.get_int("vars", 300));
  const std::size_t repeats =
      static_cast<std::size_t>(args.get_int("repeats", 3));
  const std::uint64_t seed = args.get_seed("seed", 31);

  std::cout << "[Ablation] Quadratic-basis BMF (" << r
            << " variables, repeats=" << repeats << ")\n\n";

  basis::BasisSet quad = basis::BasisSet::linear_plus_diagonal_quadratic(r);
  const std::size_t m_total = quad.size();

  io::Table table({"K", "OMP quad (%)", "BMF linear (%)", "BMF quad (%)"});
  stats::Rng master(seed);
  const std::vector<std::size_t> ks = {100, 200, 400};
  std::vector<double> e_omp(ks.size(), 0.0), e_lin(ks.size(), 0.0),
      e_quad(ks.size(), 0.0);
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    stats::Rng rng = master.split();
    // Ground truth over the quadratic basis: sparse linear part + weaker
    // quadratic curvature on the strongest variables.
    linalg::Vector truth(m_total, 0.0);
    truth[0] = 1.0;
    const std::size_t strong = r / 5;
    for (std::size_t j = 1; j <= strong; ++j) {
      truth[j] = 0.05 * rng.normal() / std::sqrt(static_cast<double>(j));
      truth[r + j] = 0.3 * truth[j];  // H2 term of the same variable
    }
    linalg::Vector early = truth;
    for (std::size_t m = 1; m < m_total; ++m)
      early[m] *= 1.0 + 0.08 * rng.normal();

    basis::PerformanceModel truth_model(quad, truth);
    auto sample = [&](std::size_t n, linalg::Matrix& pts, linalg::Vector& f) {
      pts.assign(n, r);
      f.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t v = 0; v < r; ++v) pts(i, v) = rng.normal();
        f[i] = truth_model.predict(pts.row(i)) + rng.normal(0.0, 1e-3);
      }
    };
    linalg::Matrix xte;
    linalg::Vector fte;
    sample(400, xte, fte);

    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      linalg::Matrix xtr;
      linalg::Vector ftr;
      sample(ks[ki], xtr, ftr);
      auto err = [&](const basis::PerformanceModel& m) {
        return stats::relative_error(m.predict(xte), fte);
      };
      e_omp[ki] += err(regress::omp_fit(quad, xtr, ftr));
      // Linear BMF: prior/basis truncated to the linear terms.
      basis::BasisSet lin = basis::BasisSet::linear(r);
      linalg::Vector early_lin(early.begin(), early.begin() + r + 1);
      e_lin[ki] +=
          err(core::bmf_fit(lin, early_lin, {}, xtr, ftr).model);
      e_quad[ki] += err(core::bmf_fit(quad, early, {}, xtr, ftr).model);
    }
  }
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    const double inv = 100.0 / static_cast<double>(repeats);
    table.add_row({std::to_string(ks[ki]), io::Table::num(e_omp[ki] * inv),
                   io::Table::num(e_lin[ki] * inv),
                   io::Table::num(e_quad[ki] * inv)});
  }
  std::cout << table;
  std::cout << "\nThe linear-basis fit saturates at the curvature floor; "
               "the quadratic-basis BMF keeps improving.\n";
  return 0;
}
