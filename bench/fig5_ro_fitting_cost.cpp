// Reproduces Fig. 5: fitting cost vs number of post-layout training samples
// for (a) power, (b) phase noise, (c) frequency of the ring oscillator,
// comparing OMP, BMF-PS with the conventional Cholesky solver, and BMF-PS
// with the fast Woodbury solver (Section IV-C).
//
// The BMF pipelines share the cross-validation stage (which always uses the
// low-rank engine; running the CV grid through dense M x M solves would be
// the product of the two costs and is exactly what Section IV-C exists to
// avoid). The conventional-vs-fast contrast is therefore reported both as
// full-pipeline cost and as the isolated MAP-solve cost — the paper's
// "up to 600x" refers to the solver itself at large M (see also the
// ablation_solver_scaling bench).
#include <algorithm>
#include <iostream>

#include "bmf/fusion.hpp"
#include "experiment.hpp"
#include "io/table.hpp"
#include "regress/omp.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  // Default to a larger M than the error-table benches: the solver contrast
  // of Fig. 5 lives in the M >> K regime.
  const bench::BenchScale scale =
      bench::parse_scale(args, 2000, circuit::kRoFullVars, 1);
  std::vector<std::size_t> ks = {100, 300, 500, 700, 900};
  if (args.flag("dense-grid")) ks = {100, 200, 300, 400, 500, 600, 700, 800,
                                     900};
  if (args.flag("quick")) ks = {100, 300, 500};

  std::cout << "[Fig 5] RO fitting cost vs training samples (variables="
            << scale.vars << ")\n\n";

  for (auto metric : {circuit::RoMetric::kPower, circuit::RoMetric::kPhaseNoise,
                      circuit::RoMetric::kFrequency}) {
    circuit::Testcase tc =
        circuit::ring_oscillator_testcase(metric, scale.vars, scale.seed);
    stats::Rng rng(scale.seed + 11);
    circuit::Dataset train =
        tc.silicon.sample_late(*std::max_element(ks.begin(), ks.end()), rng);
    const linalg::Matrix g_all =
        basis::design_matrix(tc.silicon.late_basis(), train.points);

    io::Table table({"K", "OMP (s)", "BMF-PS chol (s)", "BMF-PS fast (s)",
                     "solve chol (s)", "solve fast (s)", "solver speedup"});
    for (std::size_t k : ks) {
      linalg::Matrix g_k = g_all.block(0, 0, k, g_all.cols());
      linalg::Vector f_k(train.f.begin(), train.f.begin() + k);

      double t0 = bench::now_seconds();
      regress::OmpOptions oopt;
      oopt.seed = scale.seed;
      regress::omp_solve(g_k, f_k, oopt);
      const double t_omp = bench::now_seconds() - t0;

      core::BmfFitter fitter(tc.silicon.late_basis(), tc.early_coeffs,
                             tc.informative, {});
      t0 = bench::now_seconds();
      fitter.set_design(g_k, f_k);
      const core::CvCurve& zm = fitter.zero_mean_curve();
      const core::CvCurve& nzm = fitter.nonzero_mean_curve();
      const double t_cv = bench::now_seconds() - t0;
      const bool zm_wins = zm.best_error() <= nzm.best_error();
      const core::PriorKind kind =
          zm_wins ? core::PriorKind::kZeroMean : core::PriorKind::kNonzeroMean;
      const double tau = zm_wins ? zm.best_tau() : nzm.best_tau();

      const auto prior =
          kind == core::PriorKind::kZeroMean
              ? core::CoefficientPrior::zero_mean(tc.early_coeffs,
                                                  tc.informative)
              : core::CoefficientPrior::nonzero_mean(tc.early_coeffs,
                                                     tc.informative);
      t0 = bench::now_seconds();
      core::map_solve_direct(g_k, f_k, prior, tau);
      const double t_chol = bench::now_seconds() - t0;
      t0 = bench::now_seconds();
      core::map_solve_fast(g_k, f_k, prior, tau);
      const double t_fast = bench::now_seconds() - t0;

      table.add_row({std::to_string(k), io::Table::num(t_omp, 3),
                     io::Table::num(t_cv + t_chol, 3),
                     io::Table::num(t_cv + t_fast, 3),
                     io::Table::num(t_chol, 4), io::Table::num(t_fast, 4),
                     io::Table::num(t_chol / t_fast, 1) + "x"});
    }
    std::cout << "--- " << tc.metric << " ---\n" << table << "\n";
  }
  return 0;
}
