// Ablation: when does the nonzero-mean prior lose to the zero-mean prior?
// Sweeps the early-to-late coefficient drift (magnitude noise and sign-flip
// rate) and reports the K = 100 errors of all four methods. This is the
// mechanism behind the ZM/NZM winner flips across the paper's Tables I-V.
#include <iostream>

#include "experiment.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(args, 600, 1500, 3);

  std::cout << "[Ablation] Prior fidelity sweep (K=100, variables="
            << scale.vars << ", repeats=" << scale.repeats << ")\n\n";

  io::Table table({"drift", "flip rate", "OMP (%)", "BMF-ZM (%)",
                   "BMF-NZM (%)", "BMF-PS (%)", "winner"});
  struct Point {
    double drift, flips;
  };
  const Point points[] = {{0.02, 0.0}, {0.10, 0.0},  {0.30, 0.0},
                          {0.02, 0.1}, {0.02, 0.3},  {0.02, 0.5},
                          {0.20, 0.2}, {0.50, 0.5}};
  for (const Point& pt : points) {
    circuit::TestcaseSpec spec;
    spec.num_vars = scale.vars;
    spec.num_parasitic = scale.vars / 50;
    spec.strong_fraction = 0.2;
    spec.decay = 0.5;
    spec.variation_rel = 0.05;
    spec.noise_rel = 0.08;
    spec.magnitude_drift = pt.drift;
    spec.sign_flip_rate = pt.flips;
    spec.seed = scale.seed;
    circuit::Testcase tc = circuit::make_testcase(
        "ablation", "metric", "a.u.", spec, 0.0,
        circuit::EarlyModelSource::kOmpFit);
    bench::SweepConfig config;
    config.sample_sizes = {100};
    config.repeats = scale.repeats;
    config.seed = scale.seed;
    bench::SweepResult r = bench::run_error_sweep(tc, config);
    const double zm = r.errors[1][0], nzm = r.errors[2][0];
    table.add_row({io::Table::num(pt.drift, 2), io::Table::num(pt.flips, 2),
                   io::Table::num(100 * r.errors[0][0]),
                   io::Table::num(100 * zm), io::Table::num(100 * nzm),
                   io::Table::num(100 * r.errors[3][0]),
                   zm < nzm ? "ZM" : "NZM"});
  }
  std::cout << table;
  std::cout << "\nExpected pattern: NZM wins while the early model is "
               "faithful; growing sign-flip rates poison the nonzero mean "
               "and hand the win to ZM, while BMF-PS tracks the winner.\n";
  return 0;
}
