#include "experiment.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "bmf/fusion.hpp"
#include "io/table.hpp"
#include "linalg/blas.hpp"
#include "regress/omp.hpp"
#include "stats/descriptive.hpp"

namespace bmf::bench {

const char* method_name(Method m) {
  switch (m) {
    case Method::kOmp:
      return "OMP";
    case Method::kBmfZm:
      return "BMF-ZM";
    case Method::kBmfNzm:
      return "BMF-NZM";
    case Method::kBmfPs:
      return "BMF-PS";
  }
  return "?";
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SweepResult run_error_sweep(const circuit::Testcase& tc,
                            const SweepConfig& config) {
  if (config.sample_sizes.size() > 16)
    throw std::invalid_argument("run_error_sweep: at most 16 sample sizes");
  SweepResult result;
  result.sample_sizes = config.sample_sizes;

  const std::size_t k_max = *std::max_element(config.sample_sizes.begin(),
                                              config.sample_sizes.end());
  stats::Rng rng(config.seed);

  for (std::size_t rep = 0; rep < config.repeats; ++rep) {
    stats::Rng run_rng = rng.split();
    // Fresh training and testing sets per run (Section V protocol). The
    // sampling and design-matrix phases are timed separately from the
    // solves so parallel speedups stay attributable per phase.
    double t0 = now_seconds();
    circuit::Dataset train = tc.silicon.sample_late(k_max, run_rng);
    circuit::Dataset test = tc.silicon.sample_late(config.test_size, run_rng);
    result.sample_seconds += now_seconds() - t0;
    t0 = now_seconds();
    const linalg::Matrix g_all =
        basis::design_matrix(tc.silicon.late_basis(), train.points);
    const linalg::Matrix g_test =
        basis::design_matrix(tc.silicon.late_basis(), test.points);
    result.design_seconds += now_seconds() - t0;

    for (std::size_t ki = 0; ki < config.sample_sizes.size(); ++ki) {
      const std::size_t k = config.sample_sizes[ki];
      linalg::Matrix g_k = g_all.block(0, 0, k, g_all.cols());
      linalg::Vector f_k(train.f.begin(), train.f.begin() + k);

      auto record = [&](Method m, double seconds,
                        const linalg::Vector& coeffs) {
        const linalg::Vector pred = linalg::gemv(g_test, coeffs);
        result.errors[static_cast<std::size_t>(m)][ki] +=
            stats::relative_error(pred, test.f);
        result.fit_seconds[static_cast<std::size_t>(m)][ki] += seconds;
      };

      {  // OMP baseline.
        const double t0 = now_seconds();
        regress::OmpOptions opt;
        opt.seed = config.seed + rep;
        regress::OmpResult omp = regress::omp_solve(g_k, f_k, opt);
        record(Method::kOmp, now_seconds() - t0, omp.coefficients);
      }
      {  // BMF family: one fitter, shared CV engine across ZM/NZM/PS.
        core::FusionOptions opt;
        opt.cv.seed = config.seed + 31 * rep;
        core::BmfFitter fitter(tc.silicon.late_basis(), tc.early_coeffs,
                               tc.informative, opt);
        // Timing breakdown: the CV engine build dominates and is shared, so
        // each reported column charges it once:
        //   BMF-ZM  = engine + ZM curve + ZM solve
        //   BMF-NZM = engine + ZM/NZM curves (curve eval is negligible vs
        //             engine) + NZM solve
        //   BMF-PS  = engine + both curves + both solves
        double t0 = now_seconds();
        fitter.set_design(g_k, f_k);
        const core::CvCurve& zm = fitter.zero_mean_curve();
        const double t_engine_zm_curve = now_seconds() - t0;

        t0 = now_seconds();
        auto zm_model =
            fitter.fit_at(core::PriorKind::kZeroMean, zm.best_tau());
        const double t_zm_solve = now_seconds() - t0;
        record(Method::kBmfZm, t_engine_zm_curve + t_zm_solve,
               zm_model.coefficients());

        t0 = now_seconds();
        const core::CvCurve& nzm = fitter.nonzero_mean_curve();
        auto nzm_model =
            fitter.fit_at(core::PriorKind::kNonzeroMean, nzm.best_tau());
        const double t_nzm = now_seconds() - t0;
        record(Method::kBmfNzm, t_engine_zm_curve + t_nzm,
               nzm_model.coefficients());

        // BMF-PS picks whichever model the CV error prefers.
        const bool zm_wins = zm.best_error() <= nzm.best_error();
        record(Method::kBmfPs, t_engine_zm_curve + t_zm_solve + t_nzm,
               zm_wins ? zm_model.coefficients() : nzm_model.coefficients());
      }
    }
  }

  const double inv = 1.0 / static_cast<double>(config.repeats);
  for (std::size_t m = 0; m < kNumMethods; ++m)
    for (std::size_t ki = 0; ki < config.sample_sizes.size(); ++ki) {
      result.errors[m][ki] *= inv;
      result.fit_seconds[m][ki] *= inv;
    }
  result.sample_seconds *= inv;
  result.design_seconds *= inv;
  return result;
}

std::string format_error_table(const SweepResult& result) {
  io::Table table(
      {"Number of samples", "OMP", "BMF-ZM", "BMF-NZM", "BMF-PS"});
  for (std::size_t ki = 0; ki < result.sample_sizes.size(); ++ki) {
    table.add_row({std::to_string(result.sample_sizes[ki]),
                   io::Table::num(100.0 * result.errors[0][ki]),
                   io::Table::num(100.0 * result.errors[1][ki]),
                   io::Table::num(100.0 * result.errors[2][ki]),
                   io::Table::num(100.0 * result.errors[3][ki])});
  }
  return table.to_string();
}

std::string format_cost_table(const SweepResult& result,
                              const std::vector<Method>& methods) {
  std::vector<std::string> headers = {"Number of samples"};
  for (Method m : methods)
    headers.push_back(std::string(method_name(m)) + " (s)");
  io::Table table(headers);
  for (std::size_t ki = 0; ki < result.sample_sizes.size(); ++ki) {
    std::vector<std::string> row = {
        std::to_string(result.sample_sizes[ki])};
    for (Method m : methods)
      row.push_back(io::Table::num(
          result.fit_seconds[static_cast<std::size_t>(m)][ki], 4));
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string format_phase_timing(const SweepResult& result) {
  std::ostringstream os;
  os << "per-repeat phase wall-clock: sampling=" << io::Table::num(
            result.sample_seconds, 4)
     << "s, design-matrix=" << io::Table::num(result.design_seconds, 4)
     << "s (fit columns above are solve-only)";
  return os.str();
}

CostComparison run_cost_comparison(const circuit::Testcase& tc,
                                   std::size_t k_omp, std::size_t k_bmf,
                                   std::size_t repeats, std::uint64_t seed) {
  SweepConfig config;
  config.sample_sizes = {k_bmf, k_omp};
  config.repeats = repeats;
  config.seed = seed;
  SweepResult sweep = run_error_sweep(tc, config);

  CostComparison cmp;
  // Index 0 is k_bmf, index 1 is k_omp (sample_sizes order above).
  cmp.omp_error = sweep.errors[static_cast<std::size_t>(Method::kOmp)][1];
  cmp.bmf_error = sweep.errors[static_cast<std::size_t>(Method::kBmfPs)][0];
  cmp.omp_fit_seconds =
      sweep.fit_seconds[static_cast<std::size_t>(Method::kOmp)][1];
  cmp.bmf_fit_seconds =
      sweep.fit_seconds[static_cast<std::size_t>(Method::kBmfPs)][0];
  cmp.omp_sim_hours = tc.simulation_hours(k_omp);
  cmp.bmf_sim_hours = tc.simulation_hours(k_bmf);
  return cmp;
}

BenchScale parse_scale(const io::Args& args, std::size_t default_vars,
                       std::size_t full_vars, std::size_t default_repeats) {
  BenchScale scale;
  scale.vars = args.flag("full")
                   ? full_vars
                   : static_cast<std::size_t>(
                         args.get_int("vars", static_cast<long>(default_vars)));
  scale.repeats = static_cast<std::size_t>(args.get_int(
      "repeats", static_cast<long>(args.flag("full") ? 50 : default_repeats)));
  scale.seed = args.get_seed("seed", 2013);
  return scale;
}

}  // namespace bmf::bench
