// Ablation: hyper-parameter sensitivity (Section IV-D). Sweeps tau for
// both priors and prints the CV-estimated error against the true held-out
// error — validating that N-fold cross-validation picks a near-optimal
// sigma_0 / eta without access to the test set.
#include <iostream>

#include "bmf/fusion.hpp"
#include "experiment.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale =
      bench::parse_scale(args, 800, circuit::kRoDefaultVars, 1);
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 100));

  std::cout << "[Ablation] CV hyper-parameter selection vs oracle "
            << "(RO power, variables=" << scale.vars << ", K=" << k << ")\n\n";
  circuit::Testcase tc = circuit::ring_oscillator_testcase(
      circuit::RoMetric::kPower, scale.vars, scale.seed);
  stats::Rng rng(scale.seed + 3);
  circuit::Dataset train = tc.silicon.sample_late(k, rng);
  circuit::Dataset test = tc.silicon.sample_late(500, rng);

  core::BmfFitter fitter(tc.silicon.late_basis(), tc.early_coeffs,
                         tc.informative, {});
  fitter.set_data(train.points, train.f);
  const core::CvCurve& zm = fitter.zero_mean_curve();
  const core::CvCurve& nzm = fitter.nonzero_mean_curve();

  io::Table table({"tau", "ZM cv (%)", "ZM test (%)", "NZM cv (%)",
                   "NZM test (%)"});
  std::size_t best_zm_test = 0, best_nzm_test = 0;
  std::vector<double> zm_test, nzm_test;
  for (std::size_t i = 0; i < zm.taus.size(); ++i) {
    auto mz = fitter.fit_at(core::PriorKind::kZeroMean, zm.taus[i]);
    auto mn = fitter.fit_at(core::PriorKind::kNonzeroMean, zm.taus[i]);
    zm_test.push_back(
        stats::relative_error(mz.predict(test.points), test.f));
    nzm_test.push_back(
        stats::relative_error(mn.predict(test.points), test.f));
    if (zm_test[i] < zm_test[best_zm_test]) best_zm_test = i;
    if (nzm_test[i] < nzm_test[best_nzm_test]) best_nzm_test = i;
    table.add_row({io::Table::sci(zm.taus[i]),
                   io::Table::num(100 * zm.errors[i], 3),
                   io::Table::num(100 * zm_test[i], 3),
                   io::Table::num(100 * nzm.errors[i], 3),
                   io::Table::num(100 * nzm_test[i], 3)});
  }
  std::cout << table << "\n";
  std::cout << "ZM : CV picks tau index " << zm.best_index()
            << ", oracle test-best index " << best_zm_test
            << " (test err at CV pick "
            << io::Table::num(100 * zm_test[zm.best_index()], 3)
            << "% vs oracle "
            << io::Table::num(100 * zm_test[best_zm_test], 3) << "%)\n";
  std::cout << "NZM: CV picks tau index " << nzm.best_index()
            << ", oracle test-best index " << best_nzm_test
            << " (test err at CV pick "
            << io::Table::num(100 * nzm_test[nzm.best_index()], 3)
            << "% vs oracle "
            << io::Table::num(100 * nzm_test[best_nzm_test], 3) << "%)\n";
  return 0;
}
