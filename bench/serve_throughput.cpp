// Throughput/latency benchmark for the model-serving daemon.
//
// Starts an in-process Server on a background thread, publishes a linear
// model, then drives batched Evaluate requests through a real UNIX-domain
// socket round trip — framing, decode, design matrix, gemv, encode — the
// same path a production client pays. Reports sustained single-point
// evaluations per second plus p50/p99 request latency, and verifies that
// responses are bit-identical with BMF_NUM_THREADS=1 and 4.
//
// Usage: serve_throughput [--batch 4096] [--dim 24] [--requests 300]
//                         [--warmup 20] [--workers 4] [--out BENCH_serve.json]
//
// Writes a flat JSON object (not google-benchmark format: the interesting
// numbers here are end-to-end request statistics, which gbench's
// per-iteration model does not express).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "io/args.hpp"
#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "stats/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] * (1.0 - frac) + sorted_us[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmf;

  const io::Args args(argc, argv);
  const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 4096));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 24));
  const std::size_t requests =
      static_cast<std::size_t>(args.get_int("requests", 300));
  const std::size_t warmup = static_cast<std::size_t>(args.get_int("warmup", 20));
  const std::size_t workers =
      static_cast<std::size_t>(args.get_int("workers", 4));
  const std::string out_path = args.get("out", "");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string socket_path = std::string(tmpdir ? tmpdir : "/tmp") +
                                  "/bmf_serve_bench_" +
                                  std::to_string(::getpid()) + ".sock";

  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.request_timeout_ms = 30000;
  options.worker_threads = workers;
  serve::Server server(options);
  std::thread server_thread([&] { server.run(); });

  double evals_per_sec = 0.0, p50 = 0.0, p99 = 0.0;
  serve::RetryStats retry_stats;
  bool bit_identical = false;
  int exit_code = 0;
  try {
    serve::Client client(socket_path, /*timeout_ms=*/30000);

    // Linear model over `dim` variables with deterministic coefficients.
    serve::FittedModel fitted;
    {
      auto b = basis::BasisSet::linear(dim);
      stats::Rng rng(2013);
      linalg::Vector coeffs(b.size());
      for (double& c : coeffs) c = rng.normal();
      fitted.model = basis::PerformanceModel(b, coeffs);
      fitted.provenance = serve::PriorProvenance::kNonzeroMean;
      fitted.tau = 0.05;
      fitted.num_samples = 100;
    }
    client.publish("bench", fitted);

    stats::Rng rng(7);
    linalg::Matrix points(batch, dim);
    for (std::size_t i = 0; i < points.size(); ++i)
      points.data()[i] = rng.normal();

    for (std::size_t i = 0; i < warmup; ++i)
      (void)client.evaluate("bench", points);

    std::vector<double> latencies_us;
    latencies_us.reserve(requests);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      const auto r0 = Clock::now();
      const auto result = client.evaluate("bench", points);
      const auto r1 = Clock::now();
      if (result.values.size() != batch) {
        std::cerr << "serve_throughput: short response\n";
        exit_code = 1;
        break;
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(r1 - r0).count());
    }
    const auto t1 = Clock::now();
    const double elapsed = std::chrono::duration<double>(t1 - t0).count();
    evals_per_sec =
        static_cast<double>(batch) * static_cast<double>(requests) / elapsed;
    std::sort(latencies_us.begin(), latencies_us.end());
    p50 = percentile(latencies_us, 0.50);
    p99 = percentile(latencies_us, 0.99);

    // Determinism gate: the served values must not depend on the server's
    // thread count.
    parallel::set_num_threads(1);
    const auto single = client.evaluate("bench", points);
    parallel::set_num_threads(4);
    const auto quad = client.evaluate("bench", points);
    parallel::set_num_threads(0);
    bit_identical =
        single.values.size() == quad.values.size() &&
        std::memcmp(single.values.data(), quad.values.data(),
                    single.values.size() * sizeof(double)) == 0;
    if (!bit_identical) {
      std::cerr << "serve_throughput: thread counts 1 and 4 disagree\n";
      exit_code = 1;
    }

    retry_stats = client.retry_stats();
    client.shutdown_server();
  } catch (const std::exception& e) {
    std::cerr << "serve_throughput: " << e.what() << "\n";
    server.request_stop();
    exit_code = 1;
  }
  server_thread.join();
  std::remove(socket_path.c_str());
  if (exit_code != 0) return exit_code;

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"bench\": \"serve_throughput\",\n"
                "  \"batch_rows\": %zu,\n"
                "  \"dimension\": %zu,\n"
                "  \"requests\": %zu,\n"
                "  \"workers\": %zu,\n"
                "  \"simd_level\": \"%s\",\n"
                "  \"evals_per_sec\": %.1f,\n"
                "  \"p50_us\": %.2f,\n"
                "  \"p99_us\": %.2f,\n"
                "  \"retries\": %llu,\n"
                "  \"reconnects\": %llu,\n"
                "  \"bit_identical_threads_1_4\": %s\n"
                "}\n",
                batch, dim, requests, workers,
                linalg::kernels::level_name(
                    linalg::kernels::dispatch_info().active),
                evals_per_sec, p50, p99,
                static_cast<unsigned long long>(retry_stats.retries),
                static_cast<unsigned long long>(retry_stats.reconnects),
                bit_identical ? "true" : "false");
  std::cout << json;
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os << json;
    if (!os) {
      std::cerr << "serve_throughput: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
