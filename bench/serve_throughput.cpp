// Throughput/latency benchmark for the model-serving daemon.
//
// Starts an in-process Server on a background thread, publishes a linear
// model, then drives batched Evaluate requests through real socket round
// trips — framing, decode, design matrix, gemv, encode — the same path a
// production client pays. The sweep crosses transport (UNIX socket, TCP
// loopback) x connection count x pipeline depth: the baseline scenario
// (unix, 1 connection, depth 1) is the historical sequential round-trip
// number, and the multi-connection pipelined scenarios show aggregate
// throughput scaling with connection count on the epoll loop. Reports
// sustained single-point evaluations per second plus p50/p99 per-request
// latency (amortized over the window for pipelined runs), and verifies
// that responses are bit-identical with BMF_NUM_THREADS=1 and 4.
//
// Usage: serve_throughput [--batch 4096] [--dim 24] [--requests 300]
//                         [--warmup 20] [--workers 4] [--publishes 64]
//                         [--connections 1,2,4] [--pipeline 1,8]
//                         [--transport both|unix|tcp] [--router]
//                         [--out BENCH_serve.json]
//
// --router appends sharded-serving scenarios to the sweep: the same grid
// through a bmf_router fronting one in-process shard ("router1": the
// price of the extra proxy hop at equal pipeline depth) and three shards
// ("router3": per-connection model names pinned to distinct shards, so
// aggregate throughput measures horizontal scaling past one daemon).
//
// The sweep always ends with the publish-path overhead of the durable
// store: the same blob published --publishes times against a fresh daemon
// per store mode — "none" (in-memory baseline), --store-sync=never (WAL
// append, no fsync), and --store-sync=always (fsync before every ack) —
// so BENCH_serve.json records what durability costs per publish.
//
// Writes a flat JSON object (not google-benchmark format: the interesting
// numbers here are end-to-end request statistics, which gbench's
// per-iteration model does not express). The top-level evals_per_sec /
// p50_us / p99_us fields remain the baseline scenario so existing tooling
// keeps reading the single-stream number; the sweep lands in "scenarios".
#include <unistd.h>

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/args.hpp"
#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "router/router.hpp"
#include "serve/client.hpp"
#include "serve/model_codec.hpp"
#include "serve/server.hpp"
#include "stats/rng.hpp"
#include "store/store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double percentile(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] * (1.0 - frac) + sorted_us[hi] * frac;
}

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoul(item));
  if (out.empty()) out.push_back(1);
  return out;
}

struct ScenarioResult {
  std::string transport;
  std::size_t connections = 1;
  std::size_t pipeline = 1;
  double evals_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct PublishResult {
  std::string store;  // "none" | "never" | "always"
  double publishes_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// One sweep point: `connections` clients on `endpoint`, each issuing its
/// share of `requests` evaluate requests with `depth` frames in flight.
/// Connection c addresses names[c % names.size()] — a single name for the
/// direct sweep, one name per shard for the router sweep so the load
/// actually spreads. Request latency is wall time per request; for
/// pipelined windows it is the window time amortized over its requests.
ScenarioResult run_scenario(const std::string& endpoint,
                            const std::string& transport,
                            std::size_t connections, std::size_t depth,
                            const bmf::linalg::Matrix& points,
                            std::size_t requests, std::size_t warmup,
                            const std::vector<std::string>& names) {
  const std::size_t per_conn = std::max<std::size_t>(requests / connections, depth);
  const std::size_t windows = std::max<std::size_t>(per_conn / depth, 1);

  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> threads;
  std::barrier gate(static_cast<std::ptrdiff_t>(connections) + 1);

  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      bmf::serve::Client client(endpoint, /*timeout_ms=*/30000);
      const std::string& name = names[c % names.size()];
      const std::vector<bmf::linalg::Matrix> window(depth, points);
      for (std::size_t i = 0; i < warmup; ++i)
        (void)client.evaluate(name, points);
      gate.arrive_and_wait();  // all connections warm before the clock
      auto& lat = latencies[c];
      lat.reserve(windows * depth);
      for (std::size_t w = 0; w < windows; ++w) {
        const auto r0 = Clock::now();
        if (depth == 1) {
          (void)client.evaluate(name, points);
        } else {
          (void)client.evaluate_pipeline(name, window, 0, depth);
        }
        const auto r1 = Clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(r1 - r0).count() /
            static_cast<double>(depth);
        for (std::size_t d = 0; d < depth; ++d) lat.push_back(us);
      }
    });
  }

  gate.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& t : threads) t.join();
  const auto t1 = Clock::now();
  const double elapsed = std::chrono::duration<double>(t1 - t0).count();

  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());

  ScenarioResult result;
  result.transport = transport;
  result.connections = connections;
  result.pipeline = depth;
  result.evals_per_sec = static_cast<double>(points.rows()) *
                         static_cast<double>(all.size()) / elapsed;
  result.p50_us = percentile(all, 0.50);
  result.p99_us = percentile(all, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmf;

  const io::Args args(argc, argv);
  const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 4096));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim", 24));
  const std::size_t requests =
      static_cast<std::size_t>(args.get_int("requests", 300));
  const std::size_t warmup = static_cast<std::size_t>(args.get_int("warmup", 20));
  const std::size_t workers =
      static_cast<std::size_t>(args.get_int("workers", 4));
  const std::size_t publishes =
      static_cast<std::size_t>(args.get_int("publishes", 64));
  const std::vector<std::size_t> connection_counts =
      parse_list(args.get("connections", "1,2,4"));
  const std::vector<std::size_t> depths =
      parse_list(args.get("pipeline", "1,8"));
  const std::string transport = args.get("transport", "both");
  const bool with_router = args.flag("router");
  const std::string out_path = args.get("out", "");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string socket_path = std::string(tmpdir ? tmpdir : "/tmp") +
                                  "/bmf_serve_bench_" +
                                  std::to_string(::getpid()) + ".sock";

  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.request_timeout_ms = 30000;
  options.worker_threads = workers;
  options.max_connections = 64;  // the sweep holds many connections open
  const bool want_tcp = transport == "both" || transport == "tcp";
  std::string tcp_endpoint;
  std::unique_ptr<serve::Server> server;
  if (want_tcp) {
    try {
      serve::ServerOptions with_tcp = options;
      with_tcp.tcp_address = "127.0.0.1:0";
      server = std::make_unique<serve::Server>(std::move(with_tcp));
      tcp_endpoint = to_string(server->tcp_endpoint());
    } catch (const serve::ServeError& e) {
      std::cerr << "serve_throughput: TCP loopback unavailable ("
                << e.message() << "); running unix-only\n";
    }
  }
  if (server == nullptr) server = std::make_unique<serve::Server>(options);
  std::thread server_thread([&] { server->run(); });

  std::vector<ScenarioResult> scenarios;
  std::vector<PublishResult> publish_results;
  serve::RetryStats retry_stats;
  bool bit_identical = false;
  int exit_code = 0;
  try {
    serve::Client client(socket_path, /*timeout_ms=*/30000);

    // Linear model over `dim` variables with deterministic coefficients.
    serve::FittedModel fitted;
    {
      auto b = basis::BasisSet::linear(dim);
      stats::Rng rng(2013);
      linalg::Vector coeffs(b.size());
      for (double& c : coeffs) c = rng.normal();
      fitted.model = basis::PerformanceModel(b, coeffs);
      fitted.provenance = serve::PriorProvenance::kNonzeroMean;
      fitted.tau = 0.05;
      fitted.num_samples = 100;
    }
    client.publish("bench", fitted);

    stats::Rng rng(7);
    linalg::Matrix points(batch, dim);
    for (std::size_t i = 0; i < points.size(); ++i)
      points.data()[i] = rng.normal();

    // The sweep: unix first (its 1x1 point is the historical baseline),
    // then the same grid over TCP loopback when available.
    std::vector<std::pair<std::string, std::string>> endpoints;
    if (transport == "both" || transport == "unix")
      endpoints.emplace_back("unix", socket_path);
    if (!tcp_endpoint.empty()) endpoints.emplace_back("tcp", tcp_endpoint);
    const std::vector<std::string> direct_names{"bench"};
    for (const auto& [name, endpoint] : endpoints)
      for (std::size_t conns : connection_counts)
        for (std::size_t depth : depths) {
          scenarios.push_back(run_scenario(endpoint, name, conns, depth,
                                           points, requests, warmup,
                                           direct_names));
          const auto& s = scenarios.back();
          std::fprintf(stderr,
                       "  %-4s conns=%zu depth=%zu  %.0f evals/s  "
                       "p50=%.0fus p99=%.0fus\n",
                       s.transport.c_str(), s.connections, s.pipeline,
                       s.evals_per_sec, s.p50_us, s.p99_us);
        }

    // Sharded-serving sweep: the same grid through a bmf_router fronting
    // `shards` fresh in-process daemons over UNIX sockets. replicas=1 —
    // this measures routing throughput, not durability.
    const auto run_router_sweep = [&](std::size_t shards,
                                      const std::string& label) {
      std::vector<std::unique_ptr<serve::Server>> shard_servers;
      std::vector<std::thread> shard_threads;
      router::RouterOptions ropt;
      for (std::size_t i = 0; i < shards; ++i) {
        serve::ServerOptions so;
        so.socket_path =
            socket_path + "." + label + "." + std::to_string(i);
        so.request_timeout_ms = 30000;
        so.worker_threads = workers;
        so.max_connections = 64;
        ropt.backends.push_back("unix:" + so.socket_path);
        shard_servers.push_back(
            std::make_unique<serve::Server>(std::move(so)));
      }
      for (auto& s : shard_servers)
        shard_threads.emplace_back([&s] { s->run(); });
      ropt.socket_path = socket_path + "." + label;
      ropt.replicas = 1;
      ropt.request_timeout_ms = 30000;
      ropt.backend_timeout_ms = 30000;
      ropt.max_connections = 64;
      router::Router router(ropt);
      std::thread router_thread([&router] { router.run(); });

      // One model name per shard, found by probing the ring, so that
      // connection c's traffic lands on shard c % shards.
      std::vector<std::string> names(shards);
      std::vector<bool> covered(shards, false);
      for (std::size_t k = 0, found = 0; found < shards; ++k) {
        const std::string candidate = "bench_" + std::to_string(k);
        const std::size_t primary = router.ring().primary(candidate);
        if (covered[primary]) continue;
        covered[primary] = true;
        names[primary] = candidate;
        ++found;
      }
      {
        serve::Client rc(ropt.socket_path, /*timeout_ms=*/30000);
        for (const std::string& n : names) rc.publish(n, fitted);
      }
      for (std::size_t conns : connection_counts)
        for (std::size_t depth : depths) {
          scenarios.push_back(run_scenario(ropt.socket_path, label, conns,
                                           depth, points, requests, warmup,
                                           names));
          const auto& s = scenarios.back();
          std::fprintf(stderr,
                       "  %-7s conns=%zu depth=%zu  %.0f evals/s  "
                       "p50=%.0fus p99=%.0fus\n",
                       s.transport.c_str(), s.connections, s.pipeline,
                       s.evals_per_sec, s.p50_us, s.p99_us);
        }
      router.request_stop();
      router_thread.join();
      for (auto& s : shard_servers) s->request_stop();
      for (auto& t : shard_threads) t.join();
      std::remove(ropt.socket_path.c_str());
      for (const std::string& spec : ropt.backends)
        std::remove(spec.substr(5).c_str());
    };
    if (with_router) {
      run_router_sweep(1, "router1");
      run_router_sweep(3, "router3");
    }

    // Publish-path overhead: a fresh daemon per store mode, the same blob
    // published `publishes` times under one name. The delta between
    // "none" and "never" is the WAL append; "never" to "always" is the
    // fsync-per-ack durability tax.
    const std::vector<std::uint8_t> model_blob = serve::serialize_model(fitted);
    const auto run_publish_scenario = [&](const std::string& mode) {
      serve::ServerOptions so;
      const std::string pub_socket = socket_path + ".pub." + mode;
      so.socket_path = pub_socket;
      so.request_timeout_ms = 30000;
      so.worker_threads = workers;
      std::string store_dir;
      if (mode != "none") {
        char tmpl[] = "/tmp/bmf_bench_store_XXXXXX";
        char* made = ::mkdtemp(tmpl);
        if (made == nullptr)
          throw std::runtime_error("mkdtemp failed for the publish bench");
        store_dir = made;
        so.store_dir = store_dir;
        so.store_sync = store::parse_sync_policy(mode);
      }
      serve::Server pub_server(std::move(so));
      std::thread pub_thread([&pub_server] { pub_server.run(); });

      PublishResult result;
      result.store = mode;
      {
        serve::Client pc(pub_socket, /*timeout_ms=*/30000);
        for (std::size_t i = 0; i < 4; ++i)
          (void)pc.publish_blob("pub", model_blob);
        std::vector<double> lat;
        lat.reserve(publishes);
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < publishes; ++i) {
          const auto r0 = Clock::now();
          (void)pc.publish_blob("pub", model_blob);
          const auto r1 = Clock::now();
          lat.push_back(
              std::chrono::duration<double, std::micro>(r1 - r0).count());
        }
        const auto t1 = Clock::now();
        const double elapsed = std::chrono::duration<double>(t1 - t0).count();
        std::sort(lat.begin(), lat.end());
        result.publishes_per_sec = static_cast<double>(lat.size()) / elapsed;
        result.p50_us = percentile(lat, 0.50);
        result.p99_us = percentile(lat, 0.99);
      }
      pub_server.request_stop();
      pub_thread.join();
      std::remove(pub_socket.c_str());
      if (!store_dir.empty()) {
        std::remove((store_dir + "/wal.log").c_str());
        std::remove((store_dir + "/snapshot.bmfs").c_str());
        std::remove((store_dir + "/snapshot.tmp").c_str());
        ::rmdir(store_dir.c_str());
      }
      return result;
    };
    for (const char* mode : {"none", "never", "always"}) {
      publish_results.push_back(run_publish_scenario(mode));
      const auto& p = publish_results.back();
      std::fprintf(stderr,
                   "  publish store=%-6s %.0f publishes/s  "
                   "p50=%.0fus p99=%.0fus\n",
                   p.store.c_str(), p.publishes_per_sec, p.p50_us, p.p99_us);
    }

    // Determinism gate: the served values must not depend on the server's
    // thread count.
    parallel::set_num_threads(1);
    const auto single = client.evaluate("bench", points);
    parallel::set_num_threads(4);
    const auto quad = client.evaluate("bench", points);
    parallel::set_num_threads(0);
    bit_identical =
        single.values.size() == quad.values.size() &&
        std::memcmp(single.values.data(), quad.values.data(),
                    single.values.size() * sizeof(double)) == 0;
    if (!bit_identical) {
      std::cerr << "serve_throughput: thread counts 1 and 4 disagree\n";
      exit_code = 1;
    }

    retry_stats = client.retry_stats();
    client.shutdown_server();
  } catch (const std::exception& e) {
    std::cerr << "serve_throughput: " << e.what() << "\n";
    server->request_stop();
    exit_code = 1;
  }
  server_thread.join();
  std::remove(socket_path.c_str());
  if (exit_code != 0) return exit_code;

  // Baseline = first unix scenario with 1 connection, depth 1 (falls back
  // to the first scenario measured when the grid excludes it).
  ScenarioResult baseline;
  if (!scenarios.empty()) baseline = scenarios.front();
  for (const auto& s : scenarios)
    if (s.transport == "unix" && s.connections == 1 && s.pipeline == 1)
      baseline = s;

  std::ostringstream json;
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\n"
                "  \"bench\": \"serve_throughput\",\n"
                "  \"batch_rows\": %zu,\n"
                "  \"dimension\": %zu,\n"
                "  \"requests\": %zu,\n"
                "  \"workers\": %zu,\n"
                "  \"simd_level\": \"%s\",\n"
                "  \"transport\": \"%s\",\n"
                "  \"connections\": %zu,\n"
                "  \"pipeline\": %zu,\n"
                "  \"evals_per_sec\": %.1f,\n"
                "  \"p50_us\": %.2f,\n"
                "  \"p99_us\": %.2f,\n",
                batch, dim, requests, workers,
                linalg::kernels::level_name(
                    linalg::kernels::dispatch_info().active),
                baseline.transport.c_str(), baseline.connections,
                baseline.pipeline, baseline.evals_per_sec, baseline.p50_us,
                baseline.p99_us);
  json << line << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    std::snprintf(line, sizeof(line),
                  "    {\"transport\": \"%s\", \"connections\": %zu, "
                  "\"pipeline\": %zu, \"evals_per_sec\": %.1f, "
                  "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
                  s.transport.c_str(), s.connections, s.pipeline,
                  s.evals_per_sec, s.p50_us, s.p99_us,
                  i + 1 < scenarios.size() ? "," : "");
    json << line;
  }
  json << "  ],\n  \"publish_scenarios\": [\n";
  for (std::size_t i = 0; i < publish_results.size(); ++i) {
    const auto& p = publish_results[i];
    std::snprintf(line, sizeof(line),
                  "    {\"store\": \"%s\", \"publishes_per_sec\": %.1f, "
                  "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
                  p.store.c_str(), p.publishes_per_sec, p.p50_us, p.p99_us,
                  i + 1 < publish_results.size() ? "," : "");
    json << line;
  }
  std::snprintf(line, sizeof(line),
                "  ],\n"
                "  \"retries\": %llu,\n"
                "  \"reconnects\": %llu,\n"
                "  \"bit_identical_threads_1_4\": %s\n"
                "}\n",
                static_cast<unsigned long long>(retry_stats.retries),
                static_cast<unsigned long long>(retry_stats.reconnects),
                bit_identical ? "true" : "false");
  json << line;

  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os << json.str();
    if (!os) {
      std::cerr << "serve_throughput: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
