// Reproduces Fig. 8: fitting cost vs number of post-layout training samples
// for the SRAM read path — OMP vs BMF-PS with the fast solver. (As in the
// paper, the conventional Cholesky solver is omitted here: at the SRAM
// problem size the dense M x M factorization is computationally infeasible;
// pass --chol to force it anyway at reduced scale.)
#include <iostream>

#include "bmf/fusion.hpp"
#include "experiment.hpp"
#include "io/table.hpp"
#include "regress/omp.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(
      args, circuit::kSramDefaultVars, circuit::kSramFullVars, 1);
  const bool with_chol = args.flag("chol");
  std::vector<std::size_t> ks = {100, 300, 500, 700, 900};

  std::cout << "[Fig 8] SRAM read-path fitting cost vs training samples"
            << " (variables=" << scale.vars << ")\n\n";

  circuit::Testcase tc =
      circuit::sram_read_path_testcase(scale.vars, scale.seed);
  stats::Rng rng(scale.seed + 13);
  circuit::Dataset train = tc.silicon.sample_late(900, rng);
  const linalg::Matrix g_all =
      basis::design_matrix(tc.silicon.late_basis(), train.points);

  std::vector<std::string> headers = {"K", "OMP (s)", "BMF-PS fast (s)"};
  if (with_chol) headers.push_back("BMF-PS chol (s)");
  io::Table table(headers);

  for (std::size_t k : ks) {
    linalg::Matrix g_k = g_all.block(0, 0, k, g_all.cols());
    linalg::Vector f_k(train.f.begin(), train.f.begin() + k);

    double t0 = bench::now_seconds();
    regress::OmpOptions oopt;
    oopt.seed = scale.seed;
    regress::omp_solve(g_k, f_k, oopt);
    const double t_omp = bench::now_seconds() - t0;

    core::BmfFitter fitter(tc.silicon.late_basis(), tc.early_coeffs,
                           tc.informative, {});
    t0 = bench::now_seconds();
    fitter.set_design(g_k, f_k);
    fitter.fit(core::PriorSelection::kAuto);
    const double t_bmf = bench::now_seconds() - t0;

    std::vector<std::string> row = {std::to_string(k),
                                    io::Table::num(t_omp, 3),
                                    io::Table::num(t_bmf, 3)};
    if (with_chol) {
      auto prior = core::CoefficientPrior::zero_mean(tc.early_coeffs,
                                                     tc.informative);
      t0 = bench::now_seconds();
      core::map_solve_direct(g_k, f_k, prior, 1.0);
      row.push_back(io::Table::num(bench::now_seconds() - t0, 2));
    }
    table.add_row(std::move(row));
  }
  std::cout << table;
  if (!with_chol)
    std::cout << "\n(conventional Cholesky solver infeasible at this M; "
                 "see --chol and ablation_solver_scaling)\n";
  return 0;
}
