// Shared main() body for the error-table benches (Tables I, II, III, V).
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "experiment.hpp"

namespace bmf::bench {

/// Run one error-table reproduction. `make_testcase` receives (vars, seed).
inline int run_error_table_bench(
    int argc, char** argv, const std::string& title,
    std::size_t default_vars, std::size_t full_vars,
    const std::function<circuit::Testcase(std::size_t, std::uint64_t)>&
        make_testcase) {
  io::Args args(argc, argv);
  const BenchScale scale = parse_scale(args, default_vars, full_vars,
                                       /*default_repeats=*/3);

  std::cout << title << "\n";
  std::cout << "variables=" << scale.vars << " repeats=" << scale.repeats
            << " seed=" << scale.seed
            << (args.flag("full") ? " (paper scale)" : " (reduced scale)")
            << "\n\n";

  circuit::Testcase tc = make_testcase(scale.vars, scale.seed);
  SweepConfig config;
  config.repeats = scale.repeats;
  config.seed = scale.seed;
  if (args.has("test"))
    config.test_size = static_cast<std::size_t>(args.get_int("test", 300));

  SweepResult result = run_error_sweep(tc, config);
  std::cout << "Relative modeling error (%) of " << tc.metric << " for "
            << tc.circuit << "\n";
  std::cout << format_error_table(result);
  std::cout << format_phase_timing(result) << "\n" << std::flush;
  return 0;
}

}  // namespace bmf::bench
