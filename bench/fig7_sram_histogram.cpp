// Reproduces Fig. 7: histogram of 3000 post-layout Monte Carlo simulation
// samples of the SRAM read-path delay.
#include <iostream>

#include "experiment.hpp"
#include "io/csv.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(
      args, circuit::kSramDefaultVars, circuit::kSramFullVars, 1);
  const std::size_t n =
      static_cast<std::size_t>(args.get_int("samples", 3000));
  const std::size_t bins = static_cast<std::size_t>(args.get_int("bins", 25));

  circuit::Testcase tc = circuit::sram_read_path_testcase(
      scale.vars, scale.seed, circuit::EarlyModelSource::kTruth);
  stats::Rng rng(scale.seed + 7);
  circuit::Dataset d = tc.silicon.sample_late(n, rng);
  std::vector<double> values(d.f.begin(), d.f.end());
  stats::Summary s = stats::summarize(values);

  std::cout << "[Fig 7] Histogram of " << n
            << " post-layout MC samples, SRAM read delay [" << tc.unit
            << "] (variables=" << scale.vars << ")\n";
  std::cout << "mean=" << s.mean << "  sd=" << s.stddev << "\n\n";
  stats::Histogram h = stats::make_histogram(values, bins);
  std::cout << stats::render_histogram(h);

  const std::string csv = args.get("csv");
  if (!csv.empty()) {
    linalg::Vector centers(h.counts.size()), counts(h.counts.size());
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      centers[b] = h.bin_center(b);
      counts[b] = static_cast<double>(h.counts[b]);
    }
    io::write_csv_columns(csv, {"bin_center", "count"}, {centers, counts});
  }
  return 0;
}
