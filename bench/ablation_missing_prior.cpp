// Ablation: handling of late-stage basis functions with missing prior
// knowledge (Section IV-B). Compares three policies on a testcase with
// strong layout-parasitic contributions:
//   flat      — the paper's sigma = +inf treatment (our implementation)
//   pretend   — wrongly treat the zero early coefficients as informative
//               (pins the parasitic terms to zero)
//   drop      — remove the parasitic basis functions from the late model
#include <iostream>

#include "bmf/fusion.hpp"
#include "experiment.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(args, 600, 1500, 3);
  const std::size_t k = static_cast<std::size_t>(args.get_int("k", 150));

  circuit::TestcaseSpec spec;
  spec.num_vars = scale.vars;
  spec.num_parasitic = scale.vars / 50;
  spec.parasitic_strength = 0.2;  // parasitics carry real signal here
  spec.strong_fraction = 0.2;
  spec.decay = 0.5;
  spec.variation_rel = 0.05;
  spec.noise_rel = 0.05;
  spec.magnitude_drift = 0.05;
  spec.seed = scale.seed;

  std::cout << "[Ablation] Missing-prior policies (variables=" << scale.vars
            << ", parasitics=" << spec.num_parasitic << ", K=" << k
            << ", repeats=" << scale.repeats << ")\n\n";

  io::Table table({"Policy", "rel. error (%)"});
  double err_flat = 0, err_pretend = 0, err_drop = 0, err_prior = 0;
  for (std::size_t rep = 0; rep < scale.repeats; ++rep) {
    circuit::Testcase tc = circuit::make_testcase(
        "ablation", "metric", "a.u.", spec, 0.0,
        circuit::EarlyModelSource::kOmpFit);
    stats::Rng rng(scale.seed + 7 * rep);
    circuit::Dataset train = tc.silicon.sample_late(k, rng);
    circuit::Dataset test = tc.silicon.sample_late(300, rng);
    auto err = [&](const basis::PerformanceModel& m) {
      return stats::relative_error(m.predict(test.points), test.f);
    };

    // Flat (paper policy): informative mask marks parasitics as missing.
    err_flat += err(core::bmf_fit(tc.silicon.late_basis(), tc.early_coeffs,
                                  tc.informative, train.points, train.f)
                        .model);
    // Pretend: no mask; zero early coefficients are "trusted" and clamped
    // to the prior floor -> parasitic terms pinned near zero.
    err_pretend += err(core::bmf_fit(tc.silicon.late_basis(),
                                     tc.early_coeffs, {}, train.points,
                                     train.f)
                           .model);
    // Drop: delete parasitic columns from the late basis entirely.
    {
      std::vector<basis::BasisTerm> kept_terms;
      linalg::Vector kept_coeffs;
      for (std::size_t m = 0; m < tc.informative.size(); ++m) {
        if (!tc.informative[m]) continue;
        kept_terms.push_back(tc.silicon.late_basis().term(m));
        kept_coeffs.push_back(tc.early_coeffs[m]);
      }
      basis::BasisSet dropped(tc.silicon.dimension(), kept_terms);
      core::FusionResult res = core::bmf_fit(dropped, kept_coeffs, {},
                                             train.points, train.f);
      err_drop += err(res.model);
    }
    err_prior += err(basis::PerformanceModel(tc.silicon.late_basis(),
                                             tc.early_coeffs));
  }
  const double inv = 100.0 / static_cast<double>(scale.repeats);
  table.add_row({"flat prior on parasitic terms (paper, Eq. 50/51)",
                 io::Table::num(err_flat * inv)});
  table.add_row({"pretend zero prior is informative (pins to 0)",
                 io::Table::num(err_pretend * inv)});
  table.add_row({"drop parasitic basis functions",
                 io::Table::num(err_drop * inv)});
  table.add_row({"early model only (no late data)",
                 io::Table::num(err_prior * inv)});
  std::cout << table;
  std::cout << "\nThe flat-prior policy must win: it is the only one that "
               "can learn the parasitic contributions from data.\n";
  return 0;
}
