// Reproduces Table I: relative modeling error (%) of power for the ring
// oscillator, as a function of the number of post-layout training samples,
// for OMP / BMF-ZM / BMF-NZM / BMF-PS.
#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  return bench::run_error_table_bench(
      argc, argv, "[Table I] RO power", circuit::kRoDefaultVars,
      circuit::kRoFullVars, [](std::size_t vars, std::uint64_t seed) {
        return circuit::ring_oscillator_testcase(circuit::RoMetric::kPower,
                                                 vars, seed);
      });
}
