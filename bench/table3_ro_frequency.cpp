// Reproduces Table III: relative modeling error (%) of frequency for the
// ring oscillator vs the number of post-layout training samples. The
// qualitative signature to match: BMF-ZM beats BMF-NZM on this metric
// (sign flips in the early model poison the nonzero-mean prior).
#include "table_common.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  return bench::run_error_table_bench(
      argc, argv, "[Table III] RO frequency", circuit::kRoDefaultVars,
      circuit::kRoFullVars, [](std::size_t vars, std::uint64_t seed) {
        return circuit::ring_oscillator_testcase(
            circuit::RoMetric::kFrequency, vars, seed);
      });
}
