// Reproduces Table VI: modeling error and cost comparison for the SRAM
// read path — OMP with 400 post-layout training samples vs BMF-PS (fast
// solver) with 100. The headline number to match is the ~4x total-cost
// speedup without surrendering accuracy.
#include <iostream>

#include "experiment.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace bmf;
  io::Args args(argc, argv);
  const bench::BenchScale scale = bench::parse_scale(
      args, circuit::kSramDefaultVars, circuit::kSramFullVars,
      /*default_repeats=*/3);
  const std::size_t k_omp = 400, k_bmf = 100;

  std::cout << "[Table VI] SRAM read-path error and modeling cost: OMP@"
            << k_omp << " vs BMF-PS(fast)@" << k_bmf << "\n";
  std::cout << "variables=" << scale.vars << " repeats=" << scale.repeats
            << " seed=" << scale.seed << "\n\n";

  circuit::Testcase tc =
      circuit::sram_read_path_testcase(scale.vars, scale.seed);
  bench::CostComparison cmp = bench::run_cost_comparison(
      tc, k_omp, k_bmf, scale.repeats, scale.seed);

  io::Table table({"Quantity", "OMP", "BMF-PS (fast solver)"});
  table.add_row({"# of post-layout training samples", std::to_string(k_omp),
                 std::to_string(k_bmf)});
  table.add_row({"Modeling error for read delay",
                 io::Table::num(100.0 * cmp.omp_error) + "%",
                 io::Table::num(100.0 * cmp.bmf_error) + "%"});
  table.add_row({"Simulation cost (Hour, extrapolated)",
                 io::Table::num(cmp.omp_sim_hours, 2),
                 io::Table::num(cmp.bmf_sim_hours, 2)});
  table.add_row({"Fitting cost (Second, measured)",
                 io::Table::num(cmp.omp_fit_seconds, 2),
                 io::Table::num(cmp.bmf_fit_seconds, 2)});
  table.add_row({"Total modeling cost (Hour)",
                 io::Table::num(cmp.omp_total_hours(), 2),
                 io::Table::num(cmp.bmf_total_hours(), 2)});
  std::cout << table;
  std::cout << "\nTotal-cost speedup of BMF-PS over OMP: "
            << io::Table::num(cmp.speedup(), 2) << "x (paper: 4x)\n";
  return 0;
}
