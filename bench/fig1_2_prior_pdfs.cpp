// Reproduces Figs. 1 and 2: the zero-mean and nonzero-mean prior
// distributions for two model coefficients — one with a small early-stage
// coefficient (narrow prior) and one with a large one (wide prior).
// Prints sampled PDF curves as ASCII and optionally CSV (--csv <prefix>).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "bmf/prior.hpp"
#include "io/args.hpp"
#include "io/csv.hpp"

namespace {

void print_curves(const bmf::core::CoefficientPrior& prior,
                  const std::string& title, const std::string& csv) {
  std::cout << "--- " << title << " ---\n";
  const double lo = -4.0, hi = 4.0;
  const std::size_t n = 33;
  bmf::linalg::Vector xs(n), p1(n), p2(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    xs[i] = x;
    p1[i] = prior.density(0, x);
    p2[i] = prior.density(1, x);
  }
  double peak = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    peak = std::max({peak, p1[i], p2[i]});
  std::printf("%8s  %10s %-26s %10s %s\n", "alpha", "pdf(a_L1)", "",
              "pdf(a_L2)", "");
  for (std::size_t i = 0; i < n; ++i) {
    auto bar = [&](double v) {
      return std::string(static_cast<std::size_t>(24.0 * v / peak), '#');
    };
    std::printf("%8.2f  %10.4f %-26s %10.4f %s\n", xs[i], p1[i],
                bar(p1[i]).c_str(), p2[i], bar(p2[i]).c_str());
  }
  if (!csv.empty())
    bmf::io::write_csv_columns(csv, {"alpha", "pdf_coeff1", "pdf_coeff2"},
                               {xs, p1, p2});
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bmf::io::Args args(argc, argv);
  const std::string csv = args.get("csv");
  // Fig. 1/2 setup: alpha_E,1 small (0.4), alpha_E,2 large (2.0).
  const bmf::linalg::Vector early{0.4, 2.0};

  std::cout << "[Fig 1] Zero-mean prior: pdf(alpha_L,m) ~ N(0, alpha_E,m^2)"
            << "  with alpha_E = {0.4, 2.0}\n";
  print_curves(bmf::core::CoefficientPrior::zero_mean(early),
               "zero-mean prior", csv.empty() ? "" : csv + "_fig1.csv");

  std::cout << "[Fig 2] Nonzero-mean prior: pdf(alpha_L,m) ~ "
               "N(alpha_E,m, lambda^2 alpha_E,m^2), lambda = 1\n";
  print_curves(bmf::core::CoefficientPrior::nonzero_mean(early),
               "nonzero-mean prior", csv.empty() ? "" : csv + "_fig2.csv");
  return 0;
}
