// Ablation: fast-solver scaling (Section IV-C), via google-benchmark.
// Times the conventional dense Cholesky MAP solve (O(M^3)) against the
// Sherman-Morrison-Woodbury low-rank solve (O(K^2 M + K^3)) at fixed
// K = 100 and growing basis count M — the regime of the paper's reported
// "up to 600x" solver speedup (Fig. 5's solver gap).
#include <benchmark/benchmark.h>

#include "bmf/map_solver.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmf;

struct Problem {
  linalg::Matrix g;
  linalg::Vector f;
  core::CoefficientPrior prior;
};

Problem make_problem(std::size_t k, std::size_t m) {
  stats::Rng rng(m * 7 + k);
  Problem p{linalg::Matrix(k, m), linalg::Vector(k),
            core::CoefficientPrior::zero_mean(linalg::Vector(m, 1.0))};
  linalg::Vector early(m);
  for (double& e : early) e = rng.normal();
  for (std::size_t i = 0; i < k; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      p.g(i, j) = rng.normal();
      v += early[j] * p.g(i, j);
    }
    p.f[i] = v + rng.normal(0.0, 0.1);
  }
  p.prior = core::CoefficientPrior::zero_mean(early);
  return p;
}

void BM_MapSolveDirect(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::map_solve_direct(p.g, p.f, p.prior, 1.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void BM_MapSolveFast(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::map_solve_fast(p.g, p.f, p.prior, 1.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

BENCHMARK(BM_MapSolveDirect)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_MapSolveFast)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
