// Ablation: fast-solver scaling (Section IV-C), via google-benchmark.
// Times the conventional dense Cholesky MAP solve (O(M^3)) against the
// Sherman-Morrison-Woodbury low-rank solve (O(K^2 M + K^3)) at fixed
// K = 100 and growing basis count M — the regime of the paper's reported
// "up to 600x" solver speedup (Fig. 5's solver gap) — and, on top of that,
// the amortized MapSolverWorkspace path that pays the tau-independent
// kernel once and then solves each hyper-parameter in O(K^2 + K M).
#include <benchmark/benchmark.h>

#include "bmf/cross_validation.hpp"
#include "bmf/map_solver.hpp"
#include "linalg/blas.hpp"
#include "bmf/solver_workspace.hpp"
#include "linalg/smw.hpp"
#include "stats/rng.hpp"

namespace {

using namespace bmf;

struct Problem {
  linalg::Matrix g;
  linalg::Vector f;
  linalg::Vector early;
  core::CoefficientPrior prior;
};

Problem make_problem(std::size_t k, std::size_t m) {
  stats::Rng rng(m * 7 + k);
  Problem p{linalg::Matrix(k, m), linalg::Vector(k), linalg::Vector(m),
            core::CoefficientPrior::zero_mean(linalg::Vector(m, 1.0))};
  for (double& e : p.early) e = rng.normal();
  for (std::size_t i = 0; i < k; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      p.g(i, j) = rng.normal();
      v += p.early[j] * p.g(i, j);
    }
    p.f[i] = v + rng.normal(0.0, 0.1);
  }
  p.prior = core::CoefficientPrior::zero_mean(p.early);
  return p;
}

void BM_MapSolveDirect(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::map_solve_direct(p.g, p.f, p.prior, 1.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void BM_MapSolveFast(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::map_solve_fast(p.g, p.f, p.prior, 1.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

BENCHMARK(BM_MapSolveDirect)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_MapSolveFast)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// --- Amortized workspace path ----------------------------------------------
//
// The pipeline solves the same (G, f, q) at dozens of taus (CV refit,
// BMF-PS, sequential stages). The sweep benches model BMF-PS prior
// selection: both the zero-mean and nonzero-mean prior swept over the
// 21-point CV grid (the CvOptions default). BM_MapTauSweepFresh is the old
// cost model — one full Woodbury build per (prior, tau) query;
// BM_MapTauSweepWorkspace pays the tau-independent kernel once (ZM and NZM
// share the precision scale q) and reuses it across all 42 queries.

constexpr std::size_t kSweepTaus = 21;

void BM_MapWorkspaceBuild(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  for (auto _ : state) {
    core::MapSolverWorkspace ws(p.g, p.f, p.prior);
    benchmark::DoNotOptimize(ws.solve(1.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void BM_MapWorkspaceSolve(benchmark::State& state) {
  // Marginal per-tau cost once the workspace exists: O(K^2 + K M).
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  core::MapSolverWorkspace ws(p.g, p.f, p.prior);
  const linalg::Vector taus = core::log_grid(1e-2, 1e2, kSweepTaus);
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.solve(taus[t]));
    t = (t + 1) % taus.size();
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void BM_MapTauSweepFresh(benchmark::State& state) {
  // BMF-PS sweep, old cost model: both priors over the 21-point grid, one
  // full fast solve per (prior, tau) query.
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  const auto nzm = core::CoefficientPrior::nonzero_mean(p.early);
  const linalg::Vector taus = core::log_grid(1e-2, 1e2, kSweepTaus);
  for (auto _ : state) {
    for (double tau : taus) {
      benchmark::DoNotOptimize(core::map_solve_fast(p.g, p.f, p.prior, tau));
      benchmark::DoNotOptimize(core::map_solve_fast(p.g, p.f, nzm, tau));
    }
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void BM_MapTauSweepWorkspace(benchmark::State& state) {
  // Same BMF-PS sweep through the amortized path: one workspace build (ZM
  // and NZM share q), one NZM mean projection, 2 x 21 cheap solves.
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  const auto nzm = core::CoefficientPrior::nonzero_mean(p.early);
  const linalg::Vector taus = core::log_grid(1e-2, 1e2, kSweepTaus);
  for (auto _ : state) {
    core::MapSolverWorkspace ws(p.g, p.f, p.prior);
    const auto nzm_mean = ws.project_mean(nzm.mean());
    for (double tau : taus) {
      benchmark::DoNotOptimize(ws.solve(tau));
      benchmark::DoNotOptimize(ws.solve(tau, nzm_mean));
    }
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

void BM_WoodburyRescaleSolve(benchmark::State& state) {
  // WoodburySolver diagonal-rescale path: refactorize the K x K
  // capacitance (O(K^3)) without rebuilding the O(K^2 M) kernel.
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Problem p = make_problem(100, m);
  linalg::Vector diag = p.prior.precision_scale();
  linalg::Vector b = linalg::gemv_t(p.g, p.f);
  linalg::WoodburySolver solver(p.g, diag, 1.0);
  const linalg::Vector taus = core::log_grid(1e-2, 1e2, kSweepTaus);
  std::size_t t = 0;
  for (auto _ : state) {
    solver.rescale_diag(taus[t]);
    benchmark::DoNotOptimize(solver.solve(b));
    t = (t + 1) % taus.size();
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}

BENCHMARK(BM_MapWorkspaceBuild)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_MapWorkspaceSolve)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_MapTauSweepFresh)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_MapTauSweepWorkspace)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_WoodburyRescaleSolve)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
