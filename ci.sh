#!/usr/bin/env sh
# Local CI gate: the checks a PR must pass before merging.
#
#   1. Release build + full test suite (the configuration users run, and the
#      one bench/run_bench.sh benchmarks).
#   2. Debug build with AddressSanitizer + full test suite (catches memory
#      errors the optimized build can hide).
#   3. Smoke-run of the solver-scaling benchmark (tiny min-time) so bench
#      bit-rot is caught without paying for a full measurement run.
#
# Usage: ci.sh [jobs]   (default: all cores)
set -eu

src_dir="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
jobs="${1:-$(nproc)}"

echo "== Release build + tests =="
cmake -S "$src_dir" -B "$src_dir/build-ci-release" -DCMAKE_BUILD_TYPE=Release
cmake --build "$src_dir/build-ci-release" -j "$jobs"
ctest --test-dir "$src_dir/build-ci-release" --output-on-failure

echo "== Debug + AddressSanitizer build + tests =="
cmake -S "$src_dir" -B "$src_dir/build-ci-asan" \
      -DCMAKE_BUILD_TYPE=Debug -DBMF_SANITIZE=address
cmake --build "$src_dir/build-ci-asan" -j "$jobs"
ctest --test-dir "$src_dir/build-ci-asan" --output-on-failure

echo "== Benchmark smoke run =="
"$src_dir/build-ci-release/bench/ablation_solver_scaling" \
    --benchmark_min_time=0.01

echo "== CI passed =="
