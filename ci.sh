#!/usr/bin/env sh
# Local CI gate: the checks a PR must pass before merging.
#
#   1. Release build + full test suite (the configuration users run, and the
#      one bench/run_bench.sh benchmarks).
#   2. Repo-invariant lint + static analysis (clang-tidy when available,
#      GCC strict-warning fallback otherwise), reusing the Release build's
#      compile_commands.json so no extra configure is paid.
#   3. Checked Debug build with Address+UndefinedBehaviorSanitizer + full
#      test suite: one build dir covers memory errors, UB, and the
#      BMF_CHECKED contract layer (contract_test's throwing half) at once.
#   4. Smoke-run of the solver-scaling benchmark (tiny min-time) so bench
#      bit-rot is caught without paying for a full measurement run.
#
# Usage: ci.sh [jobs]   (default: all cores)
set -eu

src_dir="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
jobs="${1:-$(nproc)}"

echo "== Release build + tests =="
cmake -S "$src_dir" -B "$src_dir/build-ci-release" -DCMAKE_BUILD_TYPE=Release
cmake --build "$src_dir/build-ci-release" -j "$jobs"
ctest --test-dir "$src_dir/build-ci-release" --output-on-failure

echo "== Lint + static analysis =="
"$src_dir/scripts/lint.sh"
BMF_ANALYZE_BUILD_DIR="$src_dir/build-ci-release" "$src_dir/scripts/analyze.sh"

echo "== Checked Debug + Address/UB sanitizers + tests =="
cmake -S "$src_dir" -B "$src_dir/build-ci-checked" \
      -DCMAKE_BUILD_TYPE=Debug -DBMF_CHECKED=ON \
      -DBMF_SANITIZE=address,undefined
cmake --build "$src_dir/build-ci-checked" -j "$jobs"
ctest --test-dir "$src_dir/build-ci-checked" --output-on-failure

echo "== Benchmark smoke run =="
"$src_dir/build-ci-release/bench/ablation_solver_scaling" \
    --benchmark_min_time=0.01

echo "== CI passed =="
