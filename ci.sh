#!/usr/bin/env sh
# Local CI gate: the checks a PR must pass before merging.
#
#   1. Release build + full test suite (the configuration users run, and the
#      one bench/run_bench.sh benchmarks).
#   2. Repo-invariant lint + static analysis (clang-tidy when available,
#      GCC strict-warning fallback otherwise), reusing the Release build's
#      compile_commands.json so no extra configure is paid.
#   2b. Thread-safety gate (clang only): build the library tree under
#      clang with -Wthread-safety -Werror=thread-safety — every lock in
#      the serving stack flows through the annotated sync layer
#      (src/sync), so a missed lock is a compile error — then run the
#      negative-compile harness, which proves the gate *fires* (each
#      known-bad TU in tests/negcompile must be rejected with its
#      expected diagnostic). Skipped loudly when no clang is installed;
#      a clang whose analysis is vacuous aborts CI (probe exit 2).
#   3. Checked Debug build with Address+UndefinedBehaviorSanitizer + full
#      test suite: one build dir covers memory errors, UB, and the
#      BMF_CHECKED contract layer (contract_test's throwing half) at once.
#   4. Smoke-run of the solver-scaling benchmark (tiny min-time) so bench
#      bit-rot is caught without paying for a full measurement run.
#   5. Chaos matrix: the seeded fault-injection suite re-runs under
#      ASan/UBSan with several BMF_CHAOS_SEED values, so each seed's
#      distinct fault schedule (which calls get short reads, EINTR storms,
#      corruption, drops) is driven against the live daemon memory-clean —
#      over BOTH transports (UNIX socket and TCP loopback) when the
#      sandbox allows AF_INET; TCP legs are skipped (loudly) otherwise.
#   5b. Crash-recovery matrix under ASan/UBSan: store_crash_test forks the
#      real daemon with a durable store and kills it at every injected
#      durability syscall (Nth WAL write / fsync / snapshot rename), then
#      proves recovery keeps every acked publish byte-identical and the
#      version sequence monotonic. Memory-clean recovery is part of the
#      claim, hence the sanitized build.
#   6. ThreadSanitizer build of the concurrent serving stack (event loop,
#      worker pool, admission queue, fault engine) — the race-freedom
#      proof for the paths the chaos suite exercises, again over both
#      transports.
#   7. SIMD level matrix: the full Release test suite re-runs with
#      BMF_SIMD_LEVEL pinned to every level this host can execute (plus
#      the kernel suite under ASan/UBSan per level), so the scalar and
#      AVX2 code paths stay covered on machines whose dispatcher would
#      otherwise always pick AVX-512. Unavailable levels are skipped —
#      the matrix must pass on a non-AVX host.
#   8. Serving smoke test: start bmf_served on a temp socket, publish a
#      tiny model with bmf_client, evaluate it, and shut the daemon down —
#      proves the daemon/client binaries work end to end, not just the
#      library they link. Repeated over TCP loopback (ephemeral port via
#      --tcp-announce, pipelined eval) when the sandbox allows it.
#   9. Sharded serving smoke test: three bmf_served shards behind one
#      bmf_router (--replicas 2), driven with the ordinary bmf_client —
#      publish replicates, evict converges, and killing one shard
#      mid-service must not change a single predicted byte (failover).
#  10. Durable sharded smoke test: the same three-shard topology with a
#      --store directory per shard. Every shard is kill -9'd after the
#      publish and restarted from its store; once the router readopts
#      them, predictions must be byte-identical with zero re-publishes
#      (store-ls: appends=0 since restart, records_replayed covers the
#      replica set).
#
# Usage: ci.sh [jobs]   (default: all cores)
set -eu

src_dir="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
jobs="${1:-$(nproc)}"

echo "== Release build + tests =="
cmake -S "$src_dir" -B "$src_dir/build-ci-release" -DCMAKE_BUILD_TYPE=Release
cmake --build "$src_dir/build-ci-release" -j "$jobs"
ctest --test-dir "$src_dir/build-ci-release" --output-on-failure

echo "== Lint + static analysis =="
"$src_dir/scripts/lint.sh"
BMF_ANALYZE_BUILD_DIR="$src_dir/build-ci-release" "$src_dir/scripts/analyze.sh"

echo "== Thread-safety gate (clang -Wthread-safety) =="
clang_rc=0
clang_cxx="$("$src_dir/scripts/clang_available.sh")" || clang_rc=$?
if [ "$clang_rc" -eq 2 ]; then
  echo "error: clang present but its thread-safety analysis is vacuous" >&2
  exit 1
fi
if [ "$clang_rc" -eq 0 ]; then
  echo "-- clang: $clang_cxx --"
  cmake -S "$src_dir" -B "$src_dir/build-ci-clang" \
        -DCMAKE_BUILD_TYPE=Release -DCMAKE_CXX_COMPILER="$clang_cxx"
  cmake --build "$src_dir/build-ci-clang" -j "$jobs"
  echo "-- negative-compile harness --"
  "$src_dir/scripts/negative_compile.sh" "$clang_cxx" "$src_dir"
else
  echo "-- no clang on this host: thread-safety stages skipped --"
fi

echo "== Checked Debug + Address/UB sanitizers + tests =="
cmake -S "$src_dir" -B "$src_dir/build-ci-checked" \
      -DCMAKE_BUILD_TYPE=Debug -DBMF_CHECKED=ON \
      -DBMF_SANITIZE=address,undefined
cmake --build "$src_dir/build-ci-checked" -j "$jobs"
ctest --test-dir "$src_dir/build-ci-checked" --output-on-failure

# Transport matrix: every chaos/TSan leg runs over the UNIX socket, and
# over TCP loopback too when the sandbox can bind 127.0.0.1. Probe exit 2
# means the probe itself is broken — that aborts CI rather than skipping.
tcp_rc=0
"$src_dir/scripts/tcp_loopback_available.sh" "$src_dir/build-ci-release" \
    || tcp_rc=$?
if [ "$tcp_rc" -eq 2 ]; then
  echo "error: TCP loopback probe is broken" >&2
  exit 1
fi
if [ "$tcp_rc" -eq 0 ]; then
  transports="unix tcp"
else
  transports="unix"
  echo "-- TCP loopback unavailable in this sandbox: TCP legs skipped --"
fi

echo "== Chaos matrix (seeded fault plans under ASan/UBSan) =="
for seed in 1 7 42; do
  for transport in $transports; do
    echo "-- chaos seed $seed over $transport --"
    BMF_CHAOS_SEED="$seed" BMF_CHAOS_TRANSPORT="$transport" \
        "$src_dir/build-ci-checked/tests/serve_chaos_test"
    echo "-- router chaos seed $seed over $transport --"
    BMF_CHAOS_SEED="$seed" BMF_CHAOS_TRANSPORT="$transport" \
        "$src_dir/build-ci-checked/tests/router_test" \
        --gtest_filter='RouterChaos.*'
  done
  BMF_CHAOS_SEED="$seed" \
      "$src_dir/build-ci-checked/tests/serve_wire_fault_test"
done

echo "== Crash-recovery matrix (kill at durability syscalls, ASan/UBSan) =="
"$src_dir/build-ci-checked/tests/store_crash_test"

echo "== ThreadSanitizer: concurrent serving stack =="
cmake -S "$src_dir" -B "$src_dir/build-ci-tsan" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBMF_SANITIZE=thread
cmake --build "$src_dir/build-ci-tsan" -j "$jobs" \
      --target serve_server_test serve_pipeline_test serve_chaos_test \
               router_test
"$src_dir/build-ci-tsan/tests/serve_server_test"
"$src_dir/build-ci-tsan/tests/serve_pipeline_test"
for transport in $transports; do
  echo "-- TSan chaos over $transport --"
  BMF_CHAOS_TRANSPORT="$transport" \
      "$src_dir/build-ci-tsan/tests/serve_chaos_test"
  echo "-- TSan router over $transport --"
  BMF_CHAOS_TRANSPORT="$transport" "$src_dir/build-ci-tsan/tests/router_test"
done

echo "== Benchmark smoke run =="
"$src_dir/build-ci-release/bench/ablation_solver_scaling" \
    --benchmark_min_time=0.01

echo "== SIMD level matrix =="
# The dispatcher silently falls back when BMF_SIMD_LEVEL is unavailable,
# so probe first: re-running the fallback level and calling it "avx512
# coverage" would be a lie. Probe failure (exit 2) aborts CI.
for level in scalar avx2 avx512; do
  rc=0
  "$src_dir/scripts/simd_level_available.sh" \
      "$src_dir/build-ci-release" "$level" || rc=$?
  if [ "$rc" -eq 2 ]; then
    echo "error: SIMD level probe failed for '$level'" >&2
    exit 1
  fi
  if [ "$rc" -ne 0 ]; then
    echo "-- BMF_SIMD_LEVEL=$level not available on this host: skipped --"
    continue
  fi
  echo "-- BMF_SIMD_LEVEL=$level: Release test suite --"
  BMF_SIMD_LEVEL="$level" ctest --test-dir "$src_dir/build-ci-release" \
      --output-on-failure
  echo "-- BMF_SIMD_LEVEL=$level: kernel suite under ASan/UBSan --"
  BMF_SIMD_LEVEL="$level" "$src_dir/build-ci-checked/tests/simd_kernels_test"
done

echo "== Serving smoke test =="
serve_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp"' EXIT INT TERM
sock="$serve_tmp/bmf.sock"
"$src_dir/build-ci-release/bin/bmf_served" --socket "$sock" --quiet &
served_pid=$!
# f(x) = 1.5 + 2*H1(x0) - 0.5*H1(x1); H1 is the identity, so the point
# (0,0) must predict exactly 1.5 and (1,1) exactly 3.0.
printf 'bmf-model v2\ndimension 2\nterms 3\nterm 1.5\nterm 2.0 0:1\nterm -0.5 1:1\nend\n' \
    > "$serve_tmp/model.bmfmodel"
printf '0.0,0.0\n1.0,1.0\n' > "$serve_tmp/points.csv"
client="$src_dir/build-ci-release/bin/bmf_client"
"$client" --socket "$sock" ping
"$client" --socket "$sock" publish smoke "$serve_tmp/model.bmfmodel"
"$client" --socket "$sock" eval smoke "$serve_tmp/points.csv" \
    > "$serve_tmp/pred.txt"
"$client" --socket "$sock" list
"$client" --socket "$sock" shutdown
wait "$served_pid"
predictions="$(tr '\n' ' ' < "$serve_tmp/pred.txt")"
if [ "$predictions" != "1.5 3 " ]; then
  echo "error: serve smoke predictions were '$predictions', expected '1.5 3 '" >&2
  exit 1
fi

if [ "$tcp_rc" -eq 0 ]; then
  echo "== Serving smoke test (TCP loopback, pipelined) =="
  "$src_dir/build-ci-release/bin/bmf_served" --tcp 127.0.0.1:0 \
      --tcp-announce "$serve_tmp/endpoint" --quiet &
  served_pid=$!
  i=0
  while [ ! -s "$serve_tmp/endpoint" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
      echo "error: bmf_served never announced its TCP endpoint" >&2
      exit 1
    fi
    sleep 0.1
  done
  hostport="$(sed 's/^tcp://' "$serve_tmp/endpoint")"
  "$client" --tcp "$hostport" ping
  "$client" --tcp "$hostport" publish smoke "$serve_tmp/model.bmfmodel"
  "$client" --tcp "$hostport" eval smoke "$serve_tmp/points.csv" \
      --pipeline 2 --chunk-rows 1 > "$serve_tmp/pred_tcp.txt"
  "$client" --tcp "$hostport" shutdown
  wait "$served_pid"
  predictions="$(tr '\n' ' ' < "$serve_tmp/pred_tcp.txt")"
  if [ "$predictions" != "1.5 3 " ]; then
    echo "error: TCP smoke predictions were '$predictions', expected '1.5 3 '" >&2
    exit 1
  fi
fi

echo "== Sharded serving smoke test (router) =="
shard_pids=""
for i in 1 2 3; do
  "$src_dir/build-ci-release/bin/bmf_served" \
      --socket "$serve_tmp/shard$i.sock" --quiet &
  shard_pids="$shard_pids $!"
done
"$src_dir/build-ci-release/bin/bmf_router" --socket "$serve_tmp/router.sock" \
    --backend "unix:$serve_tmp/shard1.sock" \
    --backend "unix:$serve_tmp/shard2.sock" \
    --backend "unix:$serve_tmp/shard3.sock" \
    --replicas 2 --quiet &
router_pid=$!
"$client" --socket "$serve_tmp/router.sock" ping
"$client" --socket "$serve_tmp/router.sock" publish smoke \
    "$serve_tmp/model.bmfmodel"
"$client" --socket "$serve_tmp/router.sock" stats > /dev/null
"$client" --socket "$serve_tmp/router.sock" evict smoke
if "$client" --socket "$serve_tmp/router.sock" list | grep -q smoke; then
  echo "error: evict through the router did not converge" >&2
  exit 1
fi
"$client" --socket "$serve_tmp/router.sock" publish smoke \
    "$serve_tmp/model.bmfmodel"
# Kill one shard mid-service: with --replicas 2 every model survives any
# single death, so the predictions must be byte-identical to the direct
# smoke run above regardless of which shard owned them.
kill "${shard_pids##* }"
"$client" --socket "$serve_tmp/router.sock" eval smoke \
    "$serve_tmp/points.csv" > "$serve_tmp/pred_router.txt"
"$client" --socket "$serve_tmp/router.sock" shutdown
wait "$router_pid"
for pid in $shard_pids; do
  kill "$pid" 2> /dev/null || true
done
predictions="$(tr '\n' ' ' < "$serve_tmp/pred_router.txt")"
if [ "$predictions" != "1.5 3 " ]; then
  echo "error: router smoke predictions were '$predictions', expected '1.5 3 '" >&2
  exit 1
fi

echo "== Durable sharded smoke test (kill -9, restart from disk) =="
start_durable_shard() {
  "$src_dir/build-ci-release/bin/bmf_served" \
      --socket "$serve_tmp/dshard$1.sock" \
      --store "$serve_tmp/dstore$1" --quiet &
  shard_pids="$shard_pids $!"
}
shard_pids=""
for i in 1 2 3; do
  mkdir -p "$serve_tmp/dstore$i"
  start_durable_shard "$i"
done
"$src_dir/build-ci-release/bin/bmf_router" --socket "$serve_tmp/drouter.sock" \
    --backend "unix:$serve_tmp/dshard1.sock" \
    --backend "unix:$serve_tmp/dshard2.sock" \
    --backend "unix:$serve_tmp/dshard3.sock" \
    --replicas 2 --probe-interval-ms 100 --quiet &
router_pid=$!
"$client" --socket "$serve_tmp/drouter.sock" ping
"$client" --socket "$serve_tmp/drouter.sock" publish smoke \
    "$serve_tmp/model.bmfmodel"
# Kill -9 every shard: nothing in memory survives, so the evaluate below
# can only succeed if the stores carry the model across the restart.
for pid in $shard_pids; do
  kill -9 "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
done
shard_pids=""
for i in 1 2 3; do
  start_durable_shard "$i"
done
# Wait for the router's probes to readopt all three restarted shards
# (store-ls fans out to connected backends, so enabled counts them).
i=0
until "$client" --socket "$serve_tmp/drouter.sock" store-ls 2> /dev/null \
    | grep -q 'enabled=3'; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "error: router never readopted the restarted durable shards" >&2
    exit 1
  fi
  sleep 0.1
done
"$client" --socket "$serve_tmp/drouter.sock" eval smoke \
    "$serve_tmp/points.csv" > "$serve_tmp/pred_durable.txt"
predictions="$(tr '\n' ' ' < "$serve_tmp/pred_durable.txt")"
if [ "$predictions" != "1.5 3 " ]; then
  echo "error: durable smoke predictions were '$predictions', expected '1.5 3 '" >&2
  exit 1
fi
# The model came back from disk alone: since the restart not one publish
# reached any shard (appends=0), and replay covered the replica set
# (--replicas 2 wrote the model to two WALs, so two records replayed).
store_line="$("$client" --socket "$serve_tmp/drouter.sock" store-ls)"
echo "$store_line"
for want in 'enabled=3' 'appends=0' 'records_replayed=2' \
            'truncation_events=0'; do
  case " $store_line " in
    *" $want "*) ;;
    *)
      echo "error: durable store-ls missing '$want': $store_line" >&2
      exit 1
      ;;
  esac
done
"$client" --socket "$serve_tmp/drouter.sock" shutdown
wait "$router_pid"
for pid in $shard_pids; do
  kill "$pid" 2> /dev/null || true
done

echo "== CI passed =="
